// Multi-round DAG sweep: pinned vs DFS-materialized intermediates.
//
// Runs k-means as a 5-iteration fixed-point DAG at two cluster sizes, once
// with checkpoint edges (every iteration's center file replicated through
// gwdfs, points re-read from the DFS each round) and once with pinned
// edges plus the pinned input cache (centers live in node memory, the
// point splits are read from the DFS once). The interesting quantities are
// the per-round makespan and the DFS bytes pinning removes from the wire
// each iteration. Pinning shifts simulated read timing, so float-summing
// reduces may differ in the last bits — the sweep checks the centers agree
// to a tight tolerance and that both modes account every point. Emits
// BENCH_dag.json for PR-over-PR tracking (plain binary, simulated time).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/kmeans.h"
#include "bench/common.h"

namespace {

using namespace gw;

constexpr int kIterations = 5;

struct ModeRun {
  apps::KmeansDagResult result;
  std::vector<double> round_elapsed;
  std::vector<std::uint64_t> round_dfs;
  std::uint64_t total_dfs = 0;
};

ModeRun run_km(int nodes, const apps::KmeansConfig& km,
               const std::vector<float>& centers, const util::Bytes& points,
               bool pinned) {
  cluster::Platform p = bench::make_platform(nodes);
  dfs::Dfs fs(p, dfs::DfsConfig{});
  bench::stage_input(p, fs, "/in/points", points);
  core::JobConfig cfg;
  cfg.split_size = 256 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  ModeRun out;
  out.result = apps::kmeans_dag(
      rt, p, fs, km, centers, "/in/points", "/out/km", kIterations, cfg,
      pinned ? core::EdgeKind::kPinned : core::EdgeKind::kCheckpoint,
      /*pin_inputs=*/pinned);
  for (const auto& r : out.result.dag.rounds) {
    out.round_elapsed.push_back(r.job.elapsed_seconds);
    out.round_dfs.push_back(r.job.stats.net_dfs_bytes);
    out.total_dfs += r.job.stats.net_dfs_bytes;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_dag.json";
  const apps::KmeansConfig km{.k = 64, .dims = 4};
  const auto centers = apps::generate_centers(km, 11);
  const std::uint64_t records =
      static_cast<std::uint64_t>(100000 * bench::scale());
  const util::Bytes points = apps::generate_points(km, records, 12);

  struct Row {
    int nodes = 0;
    const char* mode = nullptr;
    const ModeRun* run = nullptr;
  };
  std::vector<std::pair<int, std::pair<ModeRun, ModeRun>>> sweeps;
  double max_center_delta = 0;
  bool counts_ok = true;
  for (const int nodes : {4, 8}) {
    ModeRun dfs_run = run_km(nodes, km, centers, points, /*pinned=*/false);
    ModeRun pin_run = run_km(nodes, km, centers, points, /*pinned=*/true);
    for (std::size_t i = 0; i < dfs_run.result.iterations.centers.size();
         ++i) {
      const double delta =
          std::fabs(static_cast<double>(dfs_run.result.iterations.centers[i]) -
                    static_cast<double>(pin_run.result.iterations.centers[i]));
      if (delta > max_center_delta) max_center_delta = delta;
    }
    std::uint64_t dfs_points = 0, pin_points = 0;
    for (auto c : dfs_run.result.iterations.counts) dfs_points += c;
    for (auto c : pin_run.result.iterations.counts) pin_points += c;
    counts_ok = counts_ok && dfs_points == records && pin_points == records;
    sweeps.push_back({nodes, {std::move(dfs_run), std::move(pin_run)}});
  }
  // Timing-shifted float summation: last-bit wobble is expected, cluster
  // reassignment is not.
  const bool centers_ok = max_center_delta < 0.5;

  std::printf("\n=== dag: kmeans %d iterations, pinned vs gwdfs edges ===\n",
              kIterations);
  std::printf("%5s %-7s %6s %12s %14s\n", "nodes", "mode", "round",
              "makespan(s)", "dfs_bytes");
  for (const auto& [nodes, runs] : sweeps) {
    for (const auto* mr : {&runs.first, &runs.second}) {
      const char* mode = mr == &runs.first ? "dfs" : "pinned";
      for (std::size_t r = 0; r < mr->round_elapsed.size(); ++r) {
        std::printf("%5d %-7s %6zu %12.3f %14llu\n", nodes, mode, r,
                    mr->round_elapsed[r],
                    static_cast<unsigned long long>(mr->round_dfs[r]));
      }
    }
    const std::uint64_t saved = runs.first.total_dfs - runs.second.total_dfs;
    std::printf(
        "%5d pinned saves %llu dfs bytes (%.1f%%, %.1f KiB/iteration), "
        "pinned_peak=%.1fMiB cache_hits=%.1fMiB\n",
        nodes, static_cast<unsigned long long>(saved),
        100.0 * static_cast<double>(saved) /
            static_cast<double>(runs.first.total_dfs),
        static_cast<double>(saved) / kIterations / 1024.0,
        static_cast<double>(runs.second.result.dag.pinned_peak_bytes) /
            1048576.0,
        static_cast<double>(runs.second.result.dag.cache_hit_bytes) /
            1048576.0);
  }
  std::printf("centers max |delta| = %.3g (%s), counts %s\n",
              max_center_delta, centers_ok ? "ok" : "MISMATCH",
              counts_ok ? "ok" : "MISMATCH");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench_scale\": %g,\n", bench::scale());
  std::fprintf(f, "  \"iterations\": %d,\n", kIterations);
  std::fprintf(f, "  \"records\": %llu,\n",
               static_cast<unsigned long long>(records));
  std::fprintf(f, "  \"centers_max_delta\": %.17g,\n", max_center_delta);
  std::fprintf(f, "  \"centers_ok\": %s,\n", centers_ok ? "true" : "false");
  std::fprintf(f, "  \"counts_ok\": %s,\n", counts_ok ? "true" : "false");
  std::fprintf(f, "  \"points\": [\n");
  bool first = true;
  for (const auto& [nodes, runs] : sweeps) {
    for (const auto* mr : {&runs.first, &runs.second}) {
      const char* mode = mr == &runs.first ? "dfs" : "pinned";
      for (std::size_t r = 0; r < mr->round_elapsed.size(); ++r) {
        std::fprintf(f,
                     "%s    {\"nodes\": %d, \"mode\": \"%s\", \"round\": %zu, "
                     "\"makespan_s\": %.17g, \"net_dfs_bytes\": %llu}",
                     first ? "" : ",\n", nodes, mode, r, mr->round_elapsed[r],
                     static_cast<unsigned long long>(mr->round_dfs[r]));
        first = false;
      }
    }
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"summary\": [\n");
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const auto& [nodes, runs] = sweeps[s];
    const std::uint64_t saved = runs.first.total_dfs - runs.second.total_dfs;
    std::fprintf(
        f,
        "    {\"nodes\": %d, \"dfs_total_bytes\": %llu, "
        "\"pinned_total_bytes\": %llu, \"saved_bytes\": %llu, "
        "\"saved_bytes_per_iteration\": %llu, \"pinned_peak_bytes\": %llu, "
        "\"cache_hit_bytes\": %llu, \"pin_spills\": %llu}%s\n",
        nodes, static_cast<unsigned long long>(runs.first.total_dfs),
        static_cast<unsigned long long>(runs.second.total_dfs),
        static_cast<unsigned long long>(saved),
        static_cast<unsigned long long>(saved / kIterations),
        static_cast<unsigned long long>(
            runs.second.result.dag.pinned_peak_bytes),
        static_cast<unsigned long long>(
            runs.second.result.dag.cache_hit_bytes),
        static_cast<unsigned long long>(runs.second.result.dag.pin_spills),
        s + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  return centers_ok && counts_ok ? 0 : 1;
}
