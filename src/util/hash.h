// Hashing used for intermediate-data partitioning and the device hash-table
// output collector (paper §III-A, §III-F).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace gw::util {

// FNV-1a 64-bit. Stable across platforms; used as the default MapReduce
// partitioner hash (overridable per job, as in the paper).
inline std::uint64_t fnv1a(const void* data, std::size_t len,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s) {
  return fnv1a(s.data(), s.size());
}

// Fast avalanching mix for integer keys (from murmur3 finalizer).
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace gw::util
