// Shared stage-graph runtime (paper §III-A / §III-D).
//
// Every engine expresses its per-node (or per-cluster) pipeline as a
// StageGraph: named stages with N worker coroutines each, wired by bounded
// sim::Channels and throttled by buffer-pool sim::Resources that the graph
// owns. The graph spawns all workers in declaration order into one
// TaskGroup and awaits them, so a declarative composition resumes in
// exactly the order the old hand-rolled spawn sequences did — simulated
// results stay bit-identical.
//
// Each worker gets a Stage context carrying its trace track; Stage::BusyScope
// brackets the worker's busy intervals and Stage::Span/instant record nested
// activity (kernel launches, merges, shuffle sends). All stage-breakdown
// reporting reduces from these spans via trace::Tracer::occupancy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim.h"
#include "util/trace.h"

namespace gw::core {

class StageGraph;

// Per-worker execution context handed to a stage body. Stable address for
// the graph's lifetime.
class Stage {
 public:
  sim::Simulation& sim() const { return *sim_; }
  trace::Tracer& tracer() const { return sim_->tracer(); }
  int worker() const { return worker_; }
  int node() const { return node_; }
  trace::TrackRef track() const { return track_; }
  std::int32_t name_id() const { return name_id_; }

  // Interns "<graph>.<label>" for use with Span/instant.
  std::int32_t span_name(std::string_view label) const;

  // RAII busy interval of this stage on its own track (kStage).
  class BusyScope {
   public:
    explicit BusyScope(Stage& st, std::uint64_t arg = 0) : st_(&st) {
      st_->tracer().begin(st_->track_, trace::Kind::kStage, st_->name_id_,
                          st_->sim().now(), arg);
    }
    ~BusyScope() {
      st_->tracer().end(st_->track_, trace::Kind::kStage, st_->name_id_,
                        st_->sim().now());
    }
    BusyScope(const BusyScope&) = delete;
    BusyScope& operator=(const BusyScope&) = delete;

   private:
    Stage* st_;
  };

  // RAII nested span of arbitrary kind/name on this stage's track.
  class Span {
   public:
    Span(Stage& st, trace::Kind kind, std::int32_t name, std::uint64_t arg = 0)
        : st_(&st), kind_(kind), name_(name) {
      st_->tracer().begin(st_->track_, kind_, name_, st_->sim().now(), arg);
    }
    ~Span() {
      st_->tracer().end(st_->track_, kind_, name_, st_->sim().now());
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    Stage* st_;
    trace::Kind kind_;
    std::int32_t name_;
  };

  void instant(trace::Kind kind, std::int32_t name, std::uint64_t arg = 0) {
    tracer().instant(track_, kind, name, sim().now(), arg);
  }

 private:
  friend class StageGraph;
  Stage(StageGraph* graph, sim::Simulation* sim, std::int32_t name_id,
        int worker, int node, trace::TrackRef track)
      : graph_(graph),
        sim_(sim),
        name_id_(name_id),
        worker_(worker),
        node_(node),
        track_(track) {}

  StageGraph* graph_;
  sim::Simulation* sim_;
  std::int32_t name_id_;
  int worker_;
  int node_;
  trace::TrackRef track_;
};

// Declarative pipeline: owns channels and buffer pools, runs stages.
class StageGraph {
 public:
  using StageBody = std::function<sim::Task<>(Stage&)>;

  // `name` prefixes every span name ("map", "reduce", "hadoop", "gpmr");
  // `default_node` attributes single-node graphs' tracks.
  StageGraph(sim::Simulation& sim, std::string_view name, int default_node);

  sim::Simulation& sim() const { return *sim_; }
  const std::string& name() const { return name_; }

  // Buffer pool of `capacity` slots (§III-D input/output buffer groups),
  // owned by the graph. Stable address.
  sim::Resource& pool(std::int64_t capacity) {
    pools_.emplace_back(*sim_, capacity);
    return pools_.back();
  }

  // Bounded channel between stages, owned by the graph. Stable address.
  template <typename T>
  sim::Channel<T>& channel(std::size_t capacity) {
    auto ch = std::make_shared<sim::Channel<T>>(*sim_, capacity);
    sim::Channel<T>& ref = *ch;
    channels_.push_back(std::move(ch));
    return ref;
  }

  // Declares a stage with `workers` parallel worker coroutines, all on the
  // graph's default node. Workers spawn in declaration order at run().
  void add_stage(std::string_view name, int workers, StageBody body);
  // Cluster-wide variant: worker w runs on node node_of[w].
  void add_stage(std::string_view name, int workers, std::vector<int> node_of,
                 StageBody body);

  // A stage context with a registered track but no spawned worker; the
  // caller awaits the body inline. Used where converting an inline await
  // into a spawn would reorder the event loop (e.g. merge-only reduce).
  Stage& inline_stage(std::string_view name);

  // Spawns every declared stage's workers in declaration order into one
  // TaskGroup, awaits them all, then sets done_event().
  sim::Task<> run();

  // Set when run() finishes; lets monitor coroutines join the graph.
  sim::Event& done_event() { return done_; }

 private:
  struct StageSpec {
    std::string label;
    int workers;
    std::vector<int> node_of;  // empty = all on default_node_
    StageBody body;
  };

  Stage& make_stage(const std::string& label, int worker, int workers,
                    int node);

  sim::Simulation* sim_;
  std::string name_;
  int default_node_;
  sim::Event done_;
  std::deque<sim::Resource> pools_;
  std::vector<std::shared_ptr<void>> channels_;
  std::vector<StageSpec> specs_;
  std::deque<Stage> stages_;  // stable addresses for worker contexts
};

}  // namespace gw::core
