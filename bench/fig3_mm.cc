// Figure 3(b,d): Matrix Multiply.
//  (b) MM on the CPU: Hadoop vs Glasswing over 1..16 nodes.
//  (d) MM on the GPU: GPMR vs Glasswing GPU over HDFS and local FS. MM
//      moves a large data volume, so on the GPU it becomes I/O bound when
//      combined with HDFS (JNI overhead), unlike its compute-bound CPU
//      behaviour — the local-FS line shows the HDFS cost (§IV-A2).
//      GPMR's MM has no reduce (partials are not aggregated) and its input
//      is generated on the fly (I/O excluded from its timing).
// Paper input: 37376^2 matrices; scaled.
#include "apps/matmul.h"
#include "bench/common.h"

namespace {

using namespace gw;

constexpr std::uint64_t kSplit = 1 << 20;

core::JobConfig base_config() {
  core::JobConfig cfg;
  cfg.input_paths = {"/in/tiles"};
  cfg.output_path = "/out";
  cfg.split_size = kSplit;
  return cfg;
}

}  // namespace

double gw_kernel_busy = 0;
double gpmr_compute_4 = 0;

int main(int argc, char** argv) {
  // t=128 tiles: 32 ops/byte — compute-bound on the CPU, I/O-bound on the
  // GPU (the paper's observed asymmetry, §IV-A2).
  apps::MatmulConfig mm{.n = 640, .tile = 128};
  if (bench::scale() >= 2) mm.n = 1024;
  const util::Bytes tiles = apps::generate_tile_pairs(mm, 1001, 2002);
  const auto app = apps::matmul(mm);

  bench::SeriesTable cpu_table("nodes");
  for (int nodes : {1, 2, 4, 8, 16}) {
    hadoop::HadoopConfig hcfg;
    hcfg.input_paths = {"/in/tiles"};
    hcfg.split_size = 256 << 10;  // ~2 tiles per task: keeps all slots busy
    cpu_table.add_timed("Hadoop", nodes, [&] {
      return bench::run_hadoop(nodes, app.kernels, tiles, hcfg);
    });
    cpu_table.add_timed("Glasswing-CPU", nodes, [&] {
      return bench::run_glasswing_cpu(nodes, app.kernels, tiles,
                                      base_config());
    });
  }
  cpu_table.print("Figure 3(b): MM on CPU over HDFS");

  bench::SeriesTable gpu_table("nodes");
  for (int nodes : {1, 2, 4, 8, 16}) {
    bench::RunOpts hdfs;
    hdfs.device = cl::DeviceSpec::gtx480();
    gpu_table.add_timed("GW-GPU(hdfs)", nodes, [&] {
      return bench::run_glasswing(nodes, app.kernels, tiles, base_config(),
                                  hdfs);
    });
    bench::RunOpts local = hdfs;
    local.local_fs = true;
    core::JobResult gw_local;
    gpu_table.add_timed("GW-GPU(local)", nodes, [&] {
      return bench::run_glasswing(nodes, app.kernels, tiles, base_config(),
                                  local, &gw_local);
    });
    if (nodes == 4) gw_kernel_busy = gw_local.stages.kernel;
    gpmr::GpmrConfig pcfg;
    pcfg.input_paths = {"/in/tiles"};
    pcfg.skip_reduce = true;       // GPMR MM has no reduce implementation
    pcfg.charge_input_io = false;  // GPMR generates input on the fly
    // "the Glasswing GPU kernel is more carefully performance-engineered"
    pcfg.kernel_ops_factor = 2.5;
    const gpmr::GpmrResult pr =
        bench::run_gpmr(nodes, app.kernels, tiles, pcfg);
    if (nodes == 4) gpmr_compute_4 = pr.compute_seconds;
    gpu_table.add("GPMR", nodes, pr.elapsed_seconds);
  }
  gpu_table.print("Figure 3(d): MM on GPU (GTX480)");

  std::printf(
      "\nShape checks:\n"
      "  CPU: Glasswing/Hadoop @1: %.2fx, @16: %.2fx (paper: >1.2x)\n"
      "  GPU: HDFS/local overhead @4 nodes: %.2fx (paper: HDFS clearly "
      "slower via JNI)\n"
      "  GPU kernel-level: GPMR map compute vs GW map-kernel busy @4 "
      "nodes: %.3fs vs %.3fs (%s — Glasswing's kernel is better "
      "performance-engineered)\n"
      "  NOTE: at this data scale MM is I/O-bound end to end, so GPMR's "
      "no-I/O/no-reduce mode finishes first overall; at the paper's scale "
      "compute dominates and the kernel-level gap decides (see "
      "EXPERIMENTS.md).\n",
      cpu_table.at("Hadoop", 1) / cpu_table.at("Glasswing-CPU", 1),
      cpu_table.at("Hadoop", 16) / cpu_table.at("Glasswing-CPU", 16),
      gpu_table.at("GW-GPU(hdfs)", 4) / gpu_table.at("GW-GPU(local)", 4),
      gpmr_compute_4, gw_kernel_busy,
      gpmr_compute_4 > gw_kernel_busy ? "OK" : "MISMATCH");

  for (int nodes : {1, 4, 16}) {
    const double h = cpu_table.at("Hadoop", nodes);
    const double g = gpu_table.at("GW-GPU(hdfs)", nodes);
    bench::register_point("MM/Hadoop-CPU/nodes:" + std::to_string(nodes),
                          [h](benchmark::State&) { return h; });
    bench::register_point("MM/GW-GPU/nodes:" + std::to_string(nodes),
                          [g](benchmark::State&) { return g; });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
