// Deterministic mixed multi-tenant workloads for core::Scheduler.
//
// Builds a reproducible stream of JobRequests — a blend of the paper's
// evaluation applications (WordCount, PageviewCount, TeraSort) in small and
// large sizes, spread across tenants, with Poisson (open-loop) arrivals from
// a seeded TrafficGen. Inputs are staged into the DFS once per distinct
// (app, size) pair and shared read-only by every job on them; outputs land
// under /mt/out/j<id>. Same WorkloadConfig => bit-identical requests.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "core/sched.h"
#include "gwdfs/fs.h"

namespace gw::apps {

struct WorkloadConfig {
  int jobs = 8;
  int tenants = 2;
  double arrival_rate_jobs_per_s = 0.5;  // offered load
  std::uint64_t seed = 1;
  // Input sizing. Tenant 0 is the "heavy" tenant (large inputs); every
  // other tenant submits small jobs — the shape that separates fair from
  // FIFO queueing (small jobs stuck behind large ones).
  std::uint64_t small_bytes = 2ull << 20;
  std::uint64_t large_bytes = 12ull << 20;
  std::uint64_t small_split_bytes = 256ull << 10;
  std::uint64_t large_split_bytes = 1ull << 20;
  bool include_terasort = true;  // blend in terasort (wc/pvc always)
};

// Stages the distinct inputs into `fs` (drives platform.sim().run() to
// completion, including TeraSort's sampling pre-pass) and returns
// cfg.jobs requests: job i goes to tenant i % tenants, its app is a
// seeded-uniform pick over the blend, and arrivals are exponential at
// arrival_rate_jobs_per_s. Submit them in order to a Scheduler — job id i
// then matches request i and output path "/mt/out/j<i>".
std::vector<core::JobRequest> make_mixed_workload(cluster::Platform& platform,
                                                  dfs::Dfs& fs,
                                                  const WorkloadConfig& cfg);

}  // namespace gw::apps
