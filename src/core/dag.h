// Multi-round job DAG runtime.
//
// A JobDag chains map→shuffle→reduce jobs ("rounds") the way the Goodrich
// MRC model chains MapReduce rounds: each round's reduce output feeds the
// next round's map input over a typed edge. A kCheckpoint edge
// materializes the output to the base filesystem (full DFS write cost,
// survives crashes, bounds recovery to the crashed round); a kPinned edge
// keeps it in the producing node's memory through the PinnedFs overlay
// (free round trip, but a host crash loses it and forces the driver to
// rewind to the newest round whose inputs still exist). A small broadcast
// channel carries per-round driver state (centroids, splitters, scan
// offsets) to every node between rounds, charged as control traffic.
//
// Static chains are built with add_round(); fixed-point loops repeat the
// last round with until(pred, max_iterations), evaluating the predicate on
// the driver after each iteration — deterministic, since round outputs and
// broadcast payloads are byte-stable across thread counts and replays.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/job.h"
#include "gwdfs/pinned.h"

namespace gw::core {

enum class EdgeKind {
  kCheckpoint = 0,  // materialize round output to the base fs
  kPinned,          // keep round output pinned in node memory
};

// Driver-visible state entering a round.
struct DagRoundState {
  int round = 0;      // logical round index, 0-based
  int iteration = 0;  // loop iteration of the repeating spec (else 0)
  util::Bytes broadcast;  // last broadcast payload (initial_broadcast at 0)
  std::vector<std::string> prev_outputs;  // previous round's output files
};

using RoundPairs = std::vector<std::pair<std::string, std::string>>;

struct RoundSpec {
  // Names the round's default output directory: <output_root>/<name>-<i>.
  std::string name;
  // Builds the round's kernels from the entry state (e.g. bakes the
  // broadcast centroids into the map closure). Required.
  std::function<AppKernels(const DagRoundState&)> app;
  // Map input paths; default: the DAG inputs for round 0, the previous
  // round's output files afterwards.
  std::function<std::vector<std::string>(const DagRoundState&)> inputs;
  // How THIS round's reduce output is stored for the next round.
  EdgeKind edge = EdgeKind::kCheckpoint;
  // Distills the round's output pairs (driver readback, files in sorted
  // order) into the next broadcast payload. Null: the payload carries over.
  std::function<util::Bytes(const DagRoundState&, const RoundPairs&)>
      broadcast;
  // Last-word hook over the round's JobConfig (output path, split size...).
  std::function<void(JobConfig&, const DagRoundState&)> tune;
};

// `iterations_done` counts completed iterations of the looping round;
// `broadcast`/`pairs` are that iteration's payload and output pairs.
using ConvergedFn = std::function<bool(
    int iterations_done, const util::Bytes& broadcast, const RoundPairs&
    pairs)>;

struct DagConfig {
  std::vector<std::string> input_paths;  // round-0 (and re-read) inputs
  std::string output_root;               // base for default round outputs
  JobConfig base;  // per-round template; input/output paths are overridden
  util::Bytes initial_broadcast;  // round 0's DagRoundState::broadcast
  // Cache input reads of base-fs files in pinned memory (re-read rounds
  // pay the DFS read once).
  bool pin_inputs = false;
  // Per-node cap on pinned + cached bytes. 0 = derive the memory
  // governor's store share (40%) from base.node_memory_bytes, or
  // unlimited for ungoverned jobs.
  std::uint64_t pin_budget_bytes = 0;
  int max_replays = 4;  // pinned-loss rewinds before the DAG aborts
  // Crash injected while logical round `round` executes (fires once; a
  // replay of the round runs crash-free).
  struct RoundCrash {
    int round = 0;
    JobConfig::CrashEvent event;
  };
  std::vector<RoundCrash> round_crashes;
  // Crash injected on the edge after logical round `after_round` commits,
  // before the next round starts (fires once).
  struct EdgeCrash {
    int after_round = 0;
    int node = -1;
    double restart_after_s = -1;  // < 0 = stays down
  };
  std::vector<EdgeCrash> edge_crashes;
  // Checkpoint-based preemption hook. When set and `preempt->requested`
  // goes true, run() returns at the next inter-round boundary with
  // DagResult::suspended — every completed round's edge is already
  // materialized (checkpointed or pinned), so nothing extra is persisted.
  // Calling run() again resumes from the boundary; completed rounds are
  // never re-executed.
  PreemptControl* preempt = nullptr;
};

struct DagRoundResult {
  std::string name;
  int round = 0;
  int iteration = 0;
  EdgeKind edge = EdgeKind::kCheckpoint;
  JobResult job;
  std::vector<std::string> outputs;
};

struct DagResult {
  // The final successful execution, in round order (replayed rounds appear
  // once, with their last run's result).
  std::vector<DagRoundResult> rounds;
  std::vector<std::string> final_outputs;  // last round's output files
  util::Bytes final_broadcast;
  int rounds_executed = 0;  // job runs including replays
  int replays = 0;          // rewinds after pinned-intermediate loss
  int iterations = 0;       // completed iterations of the looping round
  bool suspended = false;   // stopped at an inter-round preemption point
  int suspensions = 0;      // inter-round preemption stops so far
  std::uint64_t pinned_peak_bytes = 0;
  std::uint64_t pin_spills = 0;
  std::uint64_t cache_hit_bytes = 0;
  double elapsed_seconds = 0;  // simulated wall time of the whole DAG
};

class JobDag {
 public:
  JobDag(GlasswingRuntime& runtime, cluster::Platform& platform,
         dfs::FileSystem& fs, DagConfig config);

  void add_round(RoundSpec spec);
  // Repeats the LAST added round until `converged` (nullable: count-only
  // loop) returns true or `max_iterations` complete.
  void until(ConvergedFn converged, int max_iterations);

  // Runs rounds to completion — or, with config.preempt set, to the next
  // requested inter-round suspension (result.suspended). Call again to
  // resume; loop/round state persists in the JobDag across calls.
  DagResult run();

  dfs::PinnedFs& pinned_fs() { return *pinned_; }

 private:
  // Bookkeeping for rewinds: everything needed to re-enter a round.
  struct Done {
    int spec = 0;
    int iteration = 0;
    DagRoundState entry;
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
  };

  bool inputs_available(const std::vector<std::string>& paths) const;
  RoundPairs read_pairs(const std::vector<std::string>& files);
  void broadcast_payload(std::uint64_t bytes);
  void fire_edge_crashes(int round, std::vector<bool>& used);
  // Rolls state back to the newest round whose inputs still exist,
  // deleting the rolled-back rounds' outputs (the failed round's partial
  // outputs included). Updates st/spec_i/iter in place.
  void rewind(std::vector<Done>& done, DagResult& out, DagRoundState& st,
              int& spec_i, int& iter,
              const std::vector<std::string>& failed_inputs,
              const std::vector<std::string>& failed_outputs);

  GlasswingRuntime& runtime_;
  cluster::Platform& platform_;
  DagConfig config_;
  std::unique_ptr<dfs::PinnedFs> pinned_;
  std::vector<RoundSpec> specs_;
  bool loop_ = false;
  ConvergedFn converged_;
  int max_iterations_ = 0;

  // Cross-call round state so a suspended run() can resume where it left
  // off (completed rounds are durable through their edges; only the loop
  // cursor lives here).
  bool started_ = false;
  bool suspended_ = false;
  DagResult out_;
  std::vector<Done> done_;
  std::vector<bool> round_used_;
  std::vector<bool> edge_used_;
  DagRoundState st_;
  int spec_i_ = 0;
  int iter_ = 0;
};

}  // namespace gw::core
