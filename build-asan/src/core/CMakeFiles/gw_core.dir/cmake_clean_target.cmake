file(REMOVE_RECURSE
  "libgw_core.a"
)
