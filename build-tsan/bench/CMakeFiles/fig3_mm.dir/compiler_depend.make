# Empty compiler generated dependencies file for fig3_mm.
# This may be replaced when dependencies are built.
