# Empty compiler generated dependencies file for fig4_intermediate.
# This may be replaced when dependencies are built.
