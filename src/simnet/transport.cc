#include "simnet/transport.h"

#include <algorithm>

#include "util/error.h"

namespace gw::net {

namespace {
// Wire size of an EOS control frame: the u32 EOF sentinel it replaced.
constexpr std::uint64_t kEosFrameBytes = 4;
}  // namespace

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kShuffle: return "shuffle";
    case TrafficClass::kDfs: return "dfs";
    case TrafficClass::kControl: return "control";
    case TrafficClass::kRackAgg: return "rack-agg";
  }
  return "?";
}

Transport::Transport(Fabric& fabric) : fabric_(fabric) {
  per_node_.resize(static_cast<std::size_t>(fabric_.num_nodes()));
}

void Transport::account(int src, int dst, int port, TrafficClass tc,
                        std::uint64_t bytes) {
  if (src == dst) return;  // local moves are free and uncounted
  auto& c = per_node_[static_cast<std::size_t>(src)][static_cast<int>(tc)];
  c.bytes += bytes;
  c.msgs += 1;
  auto& p = per_port_[port];
  p.bytes += bytes;
  p.msgs += 1;
}

sim::Resource* Transport::credits(int src, int dst, int port) {
  const std::uint64_t window = fabric_.profile().credit_bytes;
  if (window == 0 || src == dst) return nullptr;
  const auto key = std::make_tuple(src, dst, port);
  auto it = credits_.find(key);
  if (it == credits_.end()) {
    it = credits_
             .emplace(key, std::make_unique<sim::Resource>(
                               fabric_.sim(),
                               static_cast<std::int64_t>(window)))
             .first;
  }
  return it->second.get();
}

std::int64_t Transport::credit_units(std::uint64_t bytes) const {
  // A message never needs more than the whole window (a send larger than
  // the window simply serializes the stream).
  const std::uint64_t window = fabric_.profile().credit_bytes;
  return static_cast<std::int64_t>(
      std::max<std::uint64_t>(1, std::min(bytes, window)));
}

void Transport::check_alive(int src, int dst) const {
  const sim::Simulation& sim = fabric_.sim();
  if (!sim.node_alive(src)) throw NodeDownError(src);
  if (!sim.node_alive(dst)) throw NodeDownError(dst);
}

sim::Task<> Transport::send(int src, int dst, int port, TrafficClass tc,
                            util::Bytes payload, std::uint64_t tag) {
  check_alive(src, dst);
  const std::uint64_t bytes = payload.size();
  account(src, dst, port, tc, bytes);
  if (sim::Resource* window = credits(src, dst, port)) {
    // Acquire window space, then hand ownership to the message: the
    // Receiver returns these units when it consumes the payload.
    auto hold = co_await window->acquire(credit_units(bytes));
    hold.forget();
  }
  co_await fabric_.send(src, dst, port, std::move(payload), tag);
}

sim::Task<> Transport::transfer(int src, int dst, int port, TrafficClass tc,
                                std::uint64_t bytes) {
  check_alive(src, dst);
  account(src, dst, port, tc, bytes);
  if (sim::Resource* window = credits(src, dst, port)) {
    // No payload reaches a Receiver, so the credit hold self-releases once
    // the wire occupancy completes.
    auto hold = co_await window->acquire(credit_units(bytes));
    co_await fabric_.transfer(src, dst, bytes);
    co_return;
  }
  co_await fabric_.transfer(src, dst, bytes);
}

sim::Task<> Transport::retry_transfer(int src, int dst, int port,
                                      TrafficClass tc, std::uint64_t bytes,
                                      RetryPolicy policy) {
  GW_CHECK(policy.attempts >= 1);
  double backoff = policy.backoff_s;
  for (int attempt = 0;; ++attempt) {
    try {
      co_await transfer(src, dst, port, tc, bytes);
      co_return;
    } catch (const NodeDownError&) {
      if (attempt + 1 >= policy.attempts) throw;
    }
    co_await fabric_.sim().delay(backoff);
    backoff *= policy.multiplier;
  }
}

sim::Task<> Transport::finish(int src, int dst, int port) {
  check_alive(src, dst);
  // EOS frames are control traffic and consume no credits: they must be
  // deliverable even when a stream's window is exhausted.
  account(src, dst, port, TrafficClass::kControl, kEosFrameBytes);
  auto it = expected_.find(std::make_pair(dst, port));
  if (it != expected_.end()) {
    it->second.erase(src);
    if (it->second.empty()) expected_.erase(it);
  }
  co_await fabric_.send_eos(src, dst, port);
}

void Transport::expect_senders(int dst, int port,
                               const std::vector<int>& senders) {
  auto& set = expected_[std::make_pair(dst, port)];
  for (int s : senders) set.insert(s);
  if (set.empty()) expected_.erase(std::make_pair(dst, port));
}

sim::Task<> Transport::compensate_crash(int dead) {
  // Collect first, then await: the awaits must not race registry mutation.
  // Two compensations happen per crash:
  //   * streams a live node receives: one EOS on the dead sender's behalf;
  //   * streams the DEAD node receives: EOS for every outstanding sender,
  //     so the orphaned receiver drains, terminates and releases its port
  //     (survivors skip real sends to dead destinations).
  std::vector<std::tuple<int, int, int>> inject;  // (dst, port, count)
  for (auto it = expected_.begin(); it != expected_.end();) {
    const auto [dst, port] = it->first;
    if (dst == dead) {
      inject.emplace_back(dst, port, static_cast<int>(it->second.size()));
      it = expected_.erase(it);
      continue;
    }
    if (it->second.count(dead) > 0) {
      inject.emplace_back(dst, port, 1);
      it->second.erase(dead);
      if (it->second.empty()) {
        it = expected_.erase(it);
        continue;
      }
    }
    ++it;
  }
  for (const auto& [dst, port, count] : inject) {
    for (int i = 0; i < count; ++i) {
      // Metadata injection: delivered straight to the inbox, no wire time
      // and no accounting — the frame never crossed the network.
      co_await fabric_.inbox(dst, port).send(
          Message(dead, port, util::Bytes(), true));
    }
  }
}

void Transport::clear_expected() { expected_.clear(); }

void Transport::clear_expected(int port_lo, int port_hi) {
  for (auto it = expected_.begin(); it != expected_.end();) {
    const int port = it->first.second;
    it = (port >= port_lo && port < port_hi) ? expected_.erase(it)
                                             : std::next(it);
  }
}

Transport::Receiver::Receiver(Transport& transport, int node, int port,
                              int expected_eos)
    : transport_(&transport),
      node_(node),
      port_(port),
      expected_(expected_eos) {
  GW_CHECK(expected_eos >= 0);
  // Materialize the inbox up front so messages arriving before the first
  // recv() land in this receiver's channel.
  transport_->fabric_.inbox(node_, port_);
}

sim::Task<std::optional<Message>> Transport::Receiver::recv() {
  GW_CHECK_MSG(!done_, "transport recv after end-of-stream");
  sim::Channel<Message>& ch = transport_->fabric_.inbox(node_, port_);
  for (;;) {
    auto msg = co_await ch.recv();
    if (!msg) {  // port was force-closed under us
      done_ = true;
      co_return std::nullopt;
    }
    if (msg->eos) {
      if (++eos_ >= expected_) {
        done_ = true;
        transport_->fabric_.release_port(node_, port_);
        co_return std::nullopt;
      }
      continue;
    }
    if (sim::Resource* window = transport_->credits(msg->src, node_, port_)) {
      window->release(transport_->credit_units(msg->payload.size()));
    }
    co_return std::move(msg);
  }
}

std::uint64_t Transport::bytes_sent(int node, TrafficClass tc) const {
  return per_node_[static_cast<std::size_t>(node)][static_cast<int>(tc)].bytes;
}

std::uint64_t Transport::messages_sent(int node, TrafficClass tc) const {
  return per_node_[static_cast<std::size_t>(node)][static_cast<int>(tc)].msgs;
}

std::uint64_t Transport::total_bytes(TrafficClass tc) const {
  std::uint64_t total = 0;
  for (const auto& n : per_node_) total += n[static_cast<int>(tc)].bytes;
  return total;
}

std::uint64_t Transport::port_bytes(int port) const {
  auto it = per_port_.find(port);
  return it == per_port_.end() ? 0 : it->second.bytes;
}

std::uint64_t Transport::port_messages(int port) const {
  auto it = per_port_.find(port);
  return it == per_port_.end() ? 0 : it->second.msgs;
}

}  // namespace gw::net
