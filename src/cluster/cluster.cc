#include "cluster/cluster.h"

#include "util/error.h"

namespace gw::cluster {

DiskSpec DiskSpec::sata_raid0() {
  return DiskSpec{"2xSATA-RAID0", 210e6, 190e6, 8e-3};
}

DiskSpec DiskSpec::sata_single() {
  return DiskSpec{"SATA", 110e6, 100e6, 8e-3};
}

NodeSpec NodeSpec::das4_type1() {
  return NodeSpec{"DAS4-Type1", 16, 2.4, 24ull << 30, DiskSpec::sata_raid0()};
}

NodeSpec NodeSpec::das4_type2() {
  return NodeSpec{"DAS4-Type2", 24, 2.5, 64ull << 30, DiskSpec::sata_raid0()};
}

ClusterSpec ClusterSpec::homogeneous(int n, NodeSpec node,
                                     net::NetworkProfile net_profile) {
  ClusterSpec spec;
  spec.nodes.assign(static_cast<std::size_t>(n), std::move(node));
  spec.network = std::move(net_profile);
  return spec;
}

Node::Node(sim::Simulation& sim, int id, NodeSpec spec)
    : sim_(sim), id_(id), spec_(std::move(spec)) {
  disk_ = std::make_unique<sim::Resource>(sim_, 1);
  host_cores_ = std::make_unique<sim::Resource>(sim_, spec_.hw_threads);
}

sim::Task<> Node::disk_read(std::uint64_t bytes) {
  disk_bytes_read_ += bytes;
  auto hold = co_await disk_->acquire();
  co_await sim_.delay(spec_.disk.seek_latency_s +
                      static_cast<double>(bytes) /
                          spec_.disk.read_bw_bytes_per_s);
}

sim::Task<> Node::disk_write(std::uint64_t bytes) {
  disk_bytes_written_ += bytes;
  auto hold = co_await disk_->acquire();
  co_await sim_.delay(spec_.disk.seek_latency_s +
                      static_cast<double>(bytes) /
                          spec_.disk.write_bw_bytes_per_s);
}

sim::Task<> Node::disk_stream_read(std::uint64_t bytes, double seek_fraction) {
  disk_bytes_read_ += bytes;
  auto hold = co_await disk_->acquire();
  co_await sim_.delay(seek_fraction * spec_.disk.seek_latency_s +
                      static_cast<double>(bytes) /
                          spec_.disk.read_bw_bytes_per_s);
}

sim::Task<> Node::disk_stream_write(std::uint64_t bytes, double seek_fraction) {
  disk_bytes_written_ += bytes;
  auto hold = co_await disk_->acquire();
  co_await sim_.delay(seek_fraction * spec_.disk.seek_latency_s +
                      static_cast<double>(bytes) /
                          spec_.disk.write_bw_bytes_per_s);
}

sim::Task<> Node::disk_stream_read_bw(std::uint64_t bytes,
                                      double seek_fraction,
                                      double bw_bytes_per_s) {
  const double bw =
      bw_bytes_per_s > 0 ? bw_bytes_per_s : spec_.disk.read_bw_bytes_per_s;
  disk_bytes_read_ += bytes;
  auto hold = co_await disk_->acquire();
  co_await sim_.delay(seek_fraction * spec_.disk.seek_latency_s +
                      static_cast<double>(bytes) / bw);
}

sim::Task<> Node::disk_stream_write_bw(std::uint64_t bytes,
                                       double seek_fraction,
                                       double bw_bytes_per_s) {
  const double bw =
      bw_bytes_per_s > 0 ? bw_bytes_per_s : spec_.disk.write_bw_bytes_per_s;
  disk_bytes_written_ += bytes;
  auto hold = co_await disk_->acquire();
  co_await sim_.delay(seek_fraction * spec_.disk.seek_latency_s +
                      static_cast<double>(bytes) / bw);
}

sim::Task<> Node::cpu_work(double seconds, double quantum) {
  GW_CHECK(seconds >= 0 && quantum > 0);
  double remaining = seconds;
  while (remaining > 0) {
    const double slice = std::min(remaining, quantum);
    auto core = co_await host_cores_->acquire();
    co_await sim_.delay(slice);
    remaining -= slice;
  }
}

Platform::Platform(ClusterSpec spec) : spec_(std::move(spec)) {
  GW_CHECK_MSG(!spec_.nodes.empty(), "cluster needs at least one node");
  fabric_ = std::make_unique<net::Fabric>(
      sim_, static_cast<int>(spec_.nodes.size()), spec_.network);
  transport_ = std::make_unique<net::Transport>(*fabric_);
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i) {
    nodes_.push_back(
        std::make_unique<Node>(sim_, static_cast<int>(i), spec_.nodes[i]));
  }
}

}  // namespace gw::cluster
