#include "util/trace.h"

#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace gw::trace {

namespace {

constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

std::size_t ring_capacity_from_env() {
  if (const char* env = std::getenv("GW_TRACE_RING")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return kDefaultRingCapacity;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_number(std::string& out, double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kStage: return "stage";
    case Kind::kPhase: return "phase";
    case Kind::kKernel: return "kernel";
    case Kind::kTransfer: return "transfer";
    case Kind::kShuffle: return "shuffle";
    case Kind::kMerge: return "merge";
    case Kind::kSpill: return "spill";
    case Kind::kRetry: return "retry";
    case Kind::kLink: return "link";
    case Kind::kRecovery: return "recovery";
    case Kind::kCombine: return "combine";
    case Kind::kRound: return "round";
    case Kind::kMark: return "mark";
  }
  return "?";
}

Tracer::Tracer() : ring_capacity_(ring_capacity_from_env()) {}

std::int32_t Tracer::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::int32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::int32_t>(names_.size() - 1);
}

const std::string& Tracer::name(std::int32_t id) const {
  GW_CHECK(id >= 0 && static_cast<std::size_t>(id) < names_.size());
  return names_[static_cast<std::size_t>(id)];
}

Tracer::NodeState& Tracer::node_state(std::int32_t node) {
  GW_CHECK_MSG(node >= 0, "trace events need a node id");
  if (static_cast<std::size_t>(node) >= nodes_.size()) {
    nodes_.resize(static_cast<std::size_t>(node) + 1);
  }
  return nodes_[static_cast<std::size_t>(node)];
}

TrackRef Tracer::track(std::int32_t node, std::string_view label, bool reuse) {
  NodeState& ns = node_state(node);
  if (reuse) {
    // Reuse the label's existing track: a resumed (preempted) job's spans
    // reopen on the same timeline row instead of forking a duplicate row
    // per residency. Only callers whose spans can never overlap a previous
    // registration of the same label may ask for this — concurrent jobs
    // sharing unscoped labels (device, store, combine rows) must keep
    // getting distinct tracks.
    for (std::size_t t = 0; t < ns.track_labels.size(); ++t) {
      if (ns.track_labels[t] == label) {
        return TrackRef{node, static_cast<std::int32_t>(t)};
      }
    }
  }
  ns.track_labels.emplace_back(label);
  return TrackRef{node, static_cast<std::int32_t>(ns.track_labels.size() - 1)};
}

Tracer::Acc& Tracer::acc(NodeState& ns, std::int32_t name) {
  GW_CHECK(name >= 0 && static_cast<std::size_t>(name) < names_.size());
  if (static_cast<std::size_t>(name) >= ns.accs.size()) {
    ns.accs.resize(static_cast<std::size_t>(name) + 1);
  }
  Acc& a = ns.accs[static_cast<std::size_t>(name)];
  if (!a.seen && a.spans == 0 && a.active == 0 && a.tracks.empty()) {
    // First touch on this node: remember appearance order for reports.
    ns.order.push_back(name);
  }
  return a;
}

Tracer::TrackAcc& Tracer::track_acc(Acc& a, std::int32_t track) {
  for (TrackAcc& t : a.tracks) {
    if (t.track == track) return t;
  }
  a.tracks.push_back(TrackAcc{track, 0, 0, false});
  return a.tracks.back();
}

void Tracer::record(NodeState& ns, const Event& e) {
  if (ns.ring.size() < ring_capacity_) {
    ns.ring.push_back(e);
  } else {
    ns.ring[ns.count % ring_capacity_] = e;
  }
  ++ns.count;
}

void Tracer::begin(TrackRef ref, Kind kind, std::int32_t name, double now,
                   std::uint64_t arg) {
  GW_CHECK_MSG(ref.valid(), "begin on unregistered track");
  NodeState& ns = node_state(ref.node);
  record(ns, Event{now, arg, name, ref.track, kind, 0});
  Acc& a = acc(ns, name);
  TrackAcc& t = track_acc(a, ref.track);
  GW_CHECK_MSG(!t.running, "span re-entered on its own track");
  t.running = true;
  t.started = now;
  if (a.active++ == 0) a.union_started = now;
  if (!a.seen) {
    a.seen = true;
    a.first_begin = now;
  }
}

void Tracer::end(TrackRef ref, Kind kind, std::int32_t name, double now,
                 std::uint64_t arg) {
  GW_CHECK_MSG(ref.valid(), "end on unregistered track");
  NodeState& ns = node_state(ref.node);
  record(ns, Event{now, arg, name, ref.track, kind, 1});
  Acc& a = acc(ns, name);
  TrackAcc& t = track_acc(a, ref.track);
  GW_CHECK_MSG(t.running, "span end without begin");
  t.running = false;
  t.busy += now - t.started;
  GW_CHECK(a.active > 0);
  if (--a.active == 0) {
    a.busy += now - a.union_started;
    ++a.intervals;
  }
  ++a.spans;
  a.last_end = now;
}

void Tracer::instant(TrackRef ref, Kind kind, std::int32_t name, double now,
                     std::uint64_t arg) {
  GW_CHECK_MSG(ref.valid(), "instant on unregistered track");
  record(node_state(ref.node), Event{now, arg, name, ref.track, kind, 2});
}

void Tracer::clear() {
  for (NodeState& ns : nodes_) {
    ns.ring.clear();
    ns.count = 0;
    ns.accs.clear();
    ns.order.clear();
  }
}

void Tracer::reset_occupancy() {
  for (NodeState& ns : nodes_) {
    ns.accs.clear();
    ns.order.clear();
  }
}

Occupancy Tracer::occupancy(std::int32_t node, std::string_view name) const {
  Occupancy out;
  if (node < 0 || static_cast<std::size_t>(node) >= nodes_.size()) return out;
  std::int32_t id = -1;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      id = static_cast<std::int32_t>(i);
      break;
    }
  }
  if (id < 0) return out;
  const NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  if (static_cast<std::size_t>(id) >= ns.accs.size()) return out;
  const Acc& a = ns.accs[static_cast<std::size_t>(id)];
  out.busy = a.busy;
  out.first_begin = a.first_begin;
  out.last_end = a.last_end;
  out.intervals = a.intervals;
  out.spans = a.spans;
  out.seen = a.seen;
  for (const TrackAcc& t : a.tracks) {
    if (t.busy > out.max_track_busy) out.max_track_busy = t.busy;
  }
  return out;
}

std::vector<std::string> Tracer::span_names(std::int32_t node) const {
  std::vector<std::string> out;
  if (node < 0 || static_cast<std::size_t>(node) >= nodes_.size()) return out;
  for (std::int32_t id : nodes_[static_cast<std::size_t>(node)].order) {
    out.push_back(names_[static_cast<std::size_t>(id)]);
  }
  return out;
}

std::string Tracer::chrome_json() const {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeState& ns = nodes_[n];
    if (ns.count == 0) continue;

    const std::size_t retained = std::min<std::uint64_t>(ns.count, ns.ring.size());
    const std::size_t oldest =
        ns.count > ns.ring.size() ? ns.count % ring_capacity_ : 0;

    // Which tracks actually carry events (skip metadata for idle tracks).
    std::vector<bool> used(ns.track_labels.size(), false);
    for (std::size_t i = 0; i < retained; ++i) {
      const Event& e = ns.ring[(oldest + i) % ns.ring.size()];
      if (e.track >= 0 && static_cast<std::size_t>(e.track) < used.size()) {
        used[static_cast<std::size_t>(e.track)] = true;
      }
    }

    std::string line;
    line = "{\"ph\":\"M\",\"pid\":" + std::to_string(n) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"node" +
           std::to_string(n) + "\"}}";
    emit(line);
    for (std::size_t t = 0; t < ns.track_labels.size(); ++t) {
      if (!used[t]) continue;
      line = "{\"ph\":\"M\",\"pid\":" + std::to_string(n) +
             ",\"tid\":" + std::to_string(t) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_escaped(line, ns.track_labels[t]);
      line += "\"}}";
      emit(line);
    }

    for (std::size_t i = 0; i < retained; ++i) {
      const Event& e = ns.ring[(oldest + i) % ns.ring.size()];
      line.clear();
      line += "{\"ph\":\"";
      line += e.type == 0 ? 'B' : (e.type == 1 ? 'E' : 'i');
      line += "\",\"pid\":" + std::to_string(n) +
              ",\"tid\":" + std::to_string(e.track) + ",\"ts\":";
      append_number(line, e.t * 1e6, "%.3f");
      line += ",\"name\":\"";
      append_escaped(line, name(e.name));
      line += "\",\"cat\":\"";
      line += kind_name(e.kind);
      line += "\"";
      if (e.type == 2) line += ",\"s\":\"t\"";
      if (e.type != 1) {
        line += ",\"args\":{\"arg\":" + std::to_string(e.arg) + "}";
      }
      line += "}";
      emit(line);
    }

    if (ns.count > ns.ring.size()) {
      line = "{\"ph\":\"i\",\"pid\":" + std::to_string(n) +
             ",\"tid\":0,\"ts\":0.000,\"name\":\"ring_dropped\",\"cat\":"
             "\"mark\",\"s\":\"t\",\"args\":{\"arg\":" +
             std::to_string(ns.count - ns.ring.size()) + "}}";
      emit(line);
    }
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::save_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string Tracer::validate() const {
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeState& ns = nodes_[n];
    if (ns.count == 0) continue;
    if (ns.count > ns.ring.size()) continue;  // overflow: prefix lost
    double last_t = 0;
    std::vector<std::vector<std::int32_t>> stacks(ns.track_labels.size());
    for (std::size_t i = 0; i < ns.ring.size(); ++i) {
      const Event& e = ns.ring[i];
      if (e.t < last_t) {
        return "node " + std::to_string(n) + ": timestamp went backwards at " +
               name(e.name);
      }
      last_t = e.t;
      if (e.track < 0 || static_cast<std::size_t>(e.track) >= stacks.size()) {
        return "node " + std::to_string(n) + ": event on unregistered track";
      }
      auto& stack = stacks[static_cast<std::size_t>(e.track)];
      if (e.type == 0) {
        stack.push_back(e.name);
      } else if (e.type == 1) {
        if (stack.empty() || stack.back() != e.name) {
          return "node " + std::to_string(n) + ": unbalanced end of " +
                 name(e.name) + " on track " +
                 ns.track_labels[static_cast<std::size_t>(e.track)];
        }
        stack.pop_back();
      }
    }
    for (std::size_t t = 0; t < stacks.size(); ++t) {
      if (!stacks[t].empty()) {
        return "node " + std::to_string(n) + ": span " +
               name(stacks[t].back()) + " never ended on track " +
               ns.track_labels[t];
      }
    }
  }
  return std::string();
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  for (const NodeState& ns : nodes_) total += ns.count;
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const NodeState& ns : nodes_) {
    if (ns.count > ns.ring.size()) total += ns.count - ns.ring.size();
  }
  return total;
}

void Tracer::set_ring_capacity(std::size_t events) {
  GW_CHECK_MSG(events > 0, "ring capacity must be positive");
  GW_CHECK_MSG(recorded() == 0, "set_ring_capacity after events recorded");
  ring_capacity_ = events;
}

}  // namespace gw::trace
