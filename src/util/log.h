// Minimal leveled logger.
//
// Logging in a discrete-event simulator must be cheap when disabled and must
// be able to stamp messages with *simulated* time; callers that have a clock
// pass it explicitly (see sim::Simulation::log).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace gw::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kWarn so
// tests and benches stay quiet.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

// printf-style logging. `sim_time` < 0 means "no simulated timestamp".
void log_message(LogLevel level, double sim_time, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace gw::util

#define GW_LOG(level, ...)                                      \
  do {                                                          \
    if ((level) >= ::gw::util::log_threshold()) {               \
      ::gw::util::log_message((level), -1.0, __VA_ARGS__);      \
    }                                                           \
  } while (0)

#define GW_DEBUG(...) GW_LOG(::gw::util::LogLevel::kDebug, __VA_ARGS__)
#define GW_INFO(...) GW_LOG(::gw::util::LogLevel::kInfo, __VA_ARGS__)
#define GW_WARN(...) GW_LOG(::gw::util::LogLevel::kWarn, __VA_ARGS__)
#define GW_ERROR(...) GW_LOG(::gw::util::LogLevel::kError, __VA_ARGS__)
