file(REMOVE_RECURSE
  "CMakeFiles/gw_apps.dir/blackscholes.cc.o"
  "CMakeFiles/gw_apps.dir/blackscholes.cc.o.d"
  "CMakeFiles/gw_apps.dir/kmeans.cc.o"
  "CMakeFiles/gw_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/gw_apps.dir/matmul.cc.o"
  "CMakeFiles/gw_apps.dir/matmul.cc.o.d"
  "CMakeFiles/gw_apps.dir/pageview.cc.o"
  "CMakeFiles/gw_apps.dir/pageview.cc.o.d"
  "CMakeFiles/gw_apps.dir/terasort.cc.o"
  "CMakeFiles/gw_apps.dir/terasort.cc.o.d"
  "CMakeFiles/gw_apps.dir/wordcount.cc.o"
  "CMakeFiles/gw_apps.dir/wordcount.cc.o.d"
  "libgw_apps.a"
  "libgw_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
