file(REMOVE_RECURSE
  "CMakeFiles/gw_net.dir/fabric.cc.o"
  "CMakeFiles/gw_net.dir/fabric.cc.o.d"
  "libgw_net.a"
  "libgw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
