// Work-stealing host-execution pool with futures.
//
// The simulator charges *simulated* time for kernels, but the work-items are
// real C++ and independent, so we execute them across host threads to speed
// up wall-clock runs on multicore machines. Two entry points:
//
//  - submit(fn) -> Future<T>: run fn on a worker thread; the caller joins
//    the future later. This is the offload-engine primitive: the simulator
//    submits a job at the simulated start of a compute phase and joins it at
//    the simulated point where the result is consumed, so independent nodes'
//    host work overlaps in wall-clock.
//  - parallel_for(begin, end, fn): fan a contiguous range out across the
//    pool and block until complete. The chunk decomposition depends only on
//    (begin, end) — never on the thread count — so per-chunk side effects
//    and counters are identical for every GW_THREADS setting; per-item
//    results are reduced associatively by the caller.
//
// Determinism: a pool with T threads executes the same set of pure jobs as
// a pool with 1 thread, only in a different wall-clock order. Each submitted
// task carries a deterministic sequential id (assigned in submission order,
// which the single-threaded simulator makes reproducible) usable as a seed;
// tasks spawned by parallel_for inherit the submitting task's id, so seeds
// never depend on the thread count.
//
// Joining a future from outside the pool "helps": if the task is still
// queued, the joiner claims and runs it inline. A 1-thread pool therefore
// has zero worker threads and degenerates to serial execution at the join
// points — the GW_THREADS=1 baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

namespace gw::util {

class ThreadPool;

namespace detail {

struct TaskNode {
  std::function<void()> run;         // executes the body, completes the future
  std::atomic<bool> claimed{false};  // claimed by a worker or a helping joiner
  std::uint64_t seed_id = 0;         // deterministic per-task id
  bool counted = true;               // false for parallel_for helper tasks

  bool try_claim() { return !claimed.exchange(true, std::memory_order_acq_rel); }
};

struct FutureStateBase {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  std::uint64_t task_id = 0;
  ThreadPool* pool = nullptr;
  std::weak_ptr<TaskNode> node;  // claimable for inline help at join time
  std::atomic<int> handles{0};   // live Future handles referencing this task

  void mark_done();
  // Blocks until the task completed; if it is still queued, claims and runs
  // it on the calling thread instead (no deadlock on small pools).
  void wait();
  // Called when the last Future handle is dropped without a join. Task
  // closures may reference the abandoning caller's (dying) coroutine frame,
  // so an unclaimed task is claimed here and never runs; a task already
  // executing is waited for — the frame outlives this destructor call.
  void abandon();
};

template <typename T>
struct FutureState : FutureStateBase {
  std::optional<T> value;
};
template <>
struct FutureState<void> : FutureStateBase {};

}  // namespace detail

// Handle to a submitted task's eventual result. Copyable; get() is one-shot
// for move-only payloads (it moves the value out). Dropping every handle
// before the task ran CANCELS it (the closure is discarded unexecuted), so
// submitted work must be joined to take effect.
template <typename T>
class Future {
 public:
  Future() = default;
  Future(const Future& o) : state_(o.state_) { add_ref(); }
  Future(Future&& o) noexcept : state_(std::move(o.state_)) {}
  Future& operator=(const Future& o) {
    if (this != &o) {
      release();
      state_ = o.state_;
      add_ref();
    }
    return *this;
  }
  Future& operator=(Future&& o) noexcept {
    if (this != &o) {
      release();
      state_ = std::move(o.state_);
    }
    return *this;
  }
  ~Future() { release(); }

  bool valid() const { return state_ != nullptr; }
  std::uint64_t task_id() const { return state_->task_id; }
  void wait() const { state_->wait(); }

  // Waits, then returns the task's result (rethrows its exception).
  T get() {
    state_->wait();
    if (state_->error) std::rethrow_exception(state_->error);
    if constexpr (!std::is_void_v<T>) return std::move(*state_->value);
  }

 private:
  friend class ThreadPool;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {
    add_ref();
  }
  void add_ref() {
    if (state_ != nullptr) {
      state_->handles.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() {
    if (state_ != nullptr &&
        state_->handles.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      state_->abandon();
    }
    state_.reset();
  }
  std::shared_ptr<detail::FutureState<T>> state_;
};

class ThreadPool {
 public:
  // threads == 0 picks GW_THREADS from the environment if set, else
  // hardware_concurrency (min 1). A pool of N threads runs N-1 workers; the
  // caller participates in parallel_for and in future joins.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  // Schedules fn to run on the pool; returns a future for its result.
  template <typename F>
  auto submit(F fn) -> Future<std::invoke_result_t<F&>> {
    using T = std::invoke_result_t<F&>;
    auto state = std::make_shared<detail::FutureState<T>>();
    auto node = std::make_shared<detail::TaskNode>();
    state->pool = this;
    state->task_id = next_task_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    state->node = node;
    node->seed_id = state->task_id;
    node->run = [state, fn = std::move(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<T>) {
          fn();
        } else {
          state->value.emplace(fn());
        }
      } catch (...) {
        state->error = std::current_exception();
      }
      state->mark_done();
    };
    enqueue(std::move(node));
    return Future<T>(std::move(state));
  }

  // Runs fn over [begin, end) partitioned into chunks claimed dynamically by
  // worker threads plus the calling thread; blocks until complete (rethrows
  // the lowest-chunk exception). fn(chunk_begin, chunk_end, chunk_index).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

  // Deterministic id of the task the calling thread is executing (0 outside
  // any pool task). parallel_for chunks report the enclosing task's id.
  static std::uint64_t current_task_id();

  // Process-wide shared pool (lazily constructed, honors GW_THREADS).
  static ThreadPool& global();
  // Replaces the global pool (tests / benchmarks only; the caller must
  // ensure no tasks are in flight). threads follows the ctor convention.
  static void reset_global(std::size_t threads);

  // Observability for wall-clock reports: submitted tasks executed and the
  // wall time their bodies consumed (nested parallel_for spans included).
  struct Stats {
    std::uint64_t tasks_executed = 0;
    double busy_seconds = 0;
  };
  Stats stats() const;

 private:
  friend struct detail::FutureStateBase;

  void enqueue(std::shared_ptr<detail::TaskNode> node);
  void run_node(detail::TaskNode& node);

  struct Impl;
  std::size_t threads_ = 1;
  std::atomic<std::uint64_t> next_task_id_{0};
  std::unique_ptr<Impl> impl_;
};

}  // namespace gw::util
