file(REMOVE_RECURSE
  "libgw_cl.a"
)
