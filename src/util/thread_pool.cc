#include "util/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/error.h"

namespace gw::util {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  // Current job, valid while generation is odd.
  std::function<void(std::size_t, std::size_t, std::size_t)> fn;
  std::size_t begin = 0, end = 0, chunks = 0;
  std::size_t next_chunk = 0;
  std::size_t pending = 0;
  std::uint64_t generation = 0;
  bool stop = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      work_cv.wait(lock, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      run_chunks(lock);
    }
  }

  // Pops and runs chunks until exhausted. Caller holds the lock.
  void run_chunks(std::unique_lock<std::mutex>& lock) {
    const std::size_t total = end - begin;
    while (next_chunk < chunks) {
      const std::size_t c = next_chunk++;
      const std::size_t lo = begin + total * c / chunks;
      const std::size_t hi = begin + total * (c + 1) / chunks;
      lock.unlock();
      fn(lo, hi, c);
      lock.lock();
      if (--pending == 0) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  // threads-1 workers; the caller participates in parallel_for.
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, threads_);
  if (chunks <= 1) {
    fn(begin, end, 0);
    return;
  }
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->fn = fn;
  impl_->begin = begin;
  impl_->end = end;
  impl_->chunks = chunks;
  impl_->next_chunk = 0;
  impl_->pending = chunks;
  ++impl_->generation;
  impl_->work_cv.notify_all();
  impl_->run_chunks(lock);
  impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gw::util
