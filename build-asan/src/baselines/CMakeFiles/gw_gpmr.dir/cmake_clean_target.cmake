file(REMOVE_RECURSE
  "libgw_gpmr.a"
)
