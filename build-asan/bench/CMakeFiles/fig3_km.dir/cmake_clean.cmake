file(REMOVE_RECURSE
  "CMakeFiles/fig3_km.dir/fig3_km.cc.o"
  "CMakeFiles/fig3_km.dir/fig3_km.cc.o.d"
  "fig3_km"
  "fig3_km.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_km.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
