#include "baselines/gpmr/gpmr.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "core/collector.h"
#include "core/kv.h"
#include "core/pipeline.h"
#include "core/stage.h"
#include "util/error.h"

namespace gw::gpmr {

namespace {

struct Shared {
  cluster::Platform* platform;
  dfs::FileSystem* fs;
  const core::AppKernels* app;
  const GpmrConfig* cfg;
  std::vector<cl::Device*> devices;
  int num_nodes;

  // Per-node input slice (real bytes) loaded in the I/O phase.
  std::vector<util::Bytes> slices;
  // bins[dst][src]: pairs produced on src destined for dst.
  std::vector<std::vector<core::PairList>> bins;

  std::uint64_t records = 0;
  std::uint64_t pairs = 0;
  std::uint64_t peak_intermediate = 0;
};

// I/O phase: read this node's contiguous share of every (fully replicated)
// input file from the local filesystem. No compute overlap.
sim::Task<> io_phase(core::Stage& st, Shared& sh) {
  const int node = st.node();
  const core::AppKernels& app = *sh.app;
  core::Stage::BusyScope busy(st);
  util::Bytes slice;
  for (const auto& path : sh.cfg->input_paths) {
    const std::uint64_t size = sh.fs->file_size(path);
    const std::uint64_t lo = size * node / sh.num_nodes;
    const std::uint64_t hi = size * (node + 1) / sh.num_nodes;
    core::InputSplit split(path, lo, hi - lo);
    util::Bytes part =
        co_await core::read_aligned_split(*sh.fs, node, app, split);
    slice.insert(slice.end(), part.begin(), part.end());
  }
  sh.slices[node] = std::move(slice);
}

// Compute phase: chunked map kernels on the GPU; per-chunk combine (GPMR's
// partial reduction); bin results by destination node in host memory.
sim::Task<> map_phase(core::Stage& st, Shared& sh) {
  const int node = st.node();
  core::Stage::BusyScope busy(st);
  const core::AppKernels& app = *sh.app;
  const GpmrConfig& cfg = *sh.cfg;
  cl::Device& device = *sh.devices[node];
  const util::Bytes& slice = sh.slices[node];
  const std::string_view all(reinterpret_cast<const char*>(slice.data()),
                             slice.size());

  // Chunk at record boundaries (the slice itself is record-aligned).
  const std::uint64_t rec = app.fixed_record_size;
  const std::uint64_t step =
      rec > 0 ? std::max<std::uint64_t>(cfg.chunk_size / rec * rec, rec)
              : cfg.chunk_size;
  std::uint64_t local_bytes = 0;
  for (std::uint64_t base = 0; base < all.size(); base += step) {
    const std::string_view chunk =
        all.substr(base, std::min<std::uint64_t>(step, all.size() - base));
    const std::vector<std::uint64_t> offsets = core::frame_records(app, chunk);
    if (offsets.empty()) continue;
    sh.records += offsets.size();

    co_await device.stage_in(chunk.size());
    const std::size_t groups = std::max<std::size_t>(
        1, std::min<std::size_t>(cl::Device::kDefaultWorkGroups,
                                 offsets.size()));
    const bool combine_on = cfg.use_combiner && app.combine.has_value();
    auto collector = core::make_collector(combine_on
                                              ? core::OutputMode::kHashTable
                                              : core::OutputMode::kSharedPool,
                                          groups);
    cl::KernelStats map_stats = co_await device.run_kernel_grouped(
        offsets.size(), groups,
        [&](std::size_t i, std::size_t g, cl::KernelCounters& c) {
          const std::uint64_t begin = offsets[i];
          const std::uint64_t end =
              (i + 1 < offsets.size()) ? offsets[i + 1] : chunk.size();
          c.charge_read(end - begin);
          class Emitter : public core::MapEmitter {
           public:
            Emitter(core::MapOutputCollector* col, std::size_t group,
                    cl::KernelCounters* c)
                : col_(col), group_(group), c_(c) {}
            void emit(std::string_view k, std::string_view v) override {
              col_->emit(group_, k, v, *c_);
            }

           private:
            core::MapOutputCollector* col_;
            std::size_t group_;
            cl::KernelCounters* c_;
          };
          Emitter emitter(collector.get(), g, &c);
          core::MapContext ctx{&emitter, &c};
          app.map(chunk.substr(begin, end - begin), ctx);
        },
        cfg.map_launch);
    if (cfg.kernel_ops_factor > 1.0) {
      cl::KernelStats extra;
      extra.ops = static_cast<std::uint64_t>(
          static_cast<double>(map_stats.ops) * (cfg.kernel_ops_factor - 1.0));
      co_await device.charge_kernel(extra, cfg.map_launch);
    }
    core::MapChunkOutput out = co_await collector->finalize(
        device,
        combine_on ? app.combine : std::optional<core::CombineFn>{},
        cl::LaunchConfig{});
    co_await device.stage_out(out.pairs.blob_bytes());

    sh.pairs += out.pairs.size();
    local_bytes += out.pairs.blob_bytes();
    sh.peak_intermediate = std::max(sh.peak_intermediate, local_bytes);
    // In-core constraint: intermediate data must fit in host memory.
    GW_CHECK_MSG(local_bytes <= sh.platform->node(node).spec().ram_bytes,
                 "GPMR intermediate data exceeds host memory");

    for (std::size_t i = 0; i < out.pairs.size(); ++i) {
      const core::KV kv = out.pairs.get(i);
      const int dst = static_cast<int>(
          app.partition(kv.key, static_cast<std::uint32_t>(sh.num_nodes)));
      sh.bins[dst][node].add(kv.key, kv.value);
    }
  }
}

// Exchange + reduce phase on the destination node.
sim::Task<> reduce_phase(core::Stage& st, Shared& sh, GpmrResult& result) {
  const int node = st.node();
  core::Stage::BusyScope busy(st);
  const std::int32_t exchange_name = st.span_name("exchange");
  cl::Device& device = *sh.devices[node];
  const core::AppKernels& app = *sh.app;

  // Pull this node's bins from every producer (network charge).
  core::PairList mine;
  for (int src = 0; src < sh.num_nodes; ++src) {
    core::PairList& bin = sh.bins[node][src];
    if (src != node && bin.blob_bytes() > 0) {
      st.instant(trace::Kind::kShuffle, exchange_name, bin.blob_bytes());
      co_await sh.platform->transport().transfer(
          src, node, net::kPortShuffle, net::TrafficClass::kShuffle,
          bin.blob_bytes());
    }
    mine.append(bin);
    bin.clear();
  }
  if (mine.empty()) co_return;

  // GPU sort to group keys. The sort charge depends only on pre-sort sizes,
  // so the real sort (and the key grouping that follows it) runs on the
  // offload pool while the simulated sort kernel executes.
  cl::KernelStats sort_stats;
  sort_stats.ops = static_cast<std::uint64_t>(
      static_cast<double>(mine.size()) *
      std::max(1.0, std::log2(static_cast<double>(mine.size()))) * 8.0);
  sort_stats.bytes_read = mine.blob_bytes();
  sort_stats.bytes_written = mine.blob_bytes();

  // Group and reduce (one work-item per key).
  struct Group {
    Group() = default;
    std::string_view key;
    std::vector<std::string_view> values;
  };
  std::vector<Group> groups;
  auto sorting = sh.platform->sim().offload([&mine, &groups] {
    mine.sort_by_key();
    std::size_t i = 0;
    while (i < mine.size()) {
      Group g;
      g.key = mine.get(i).key;
      std::size_t j = i;
      while (j < mine.size() && mine.get(j).key == g.key) {
        g.values.push_back(mine.get(j).value);
        ++j;
      }
      groups.push_back(std::move(g));
      i = j;
    }
    return 0;
  });
  co_await device.charge_kernel(sort_stats);
  co_await sh.platform->sim().join(std::move(sorting));
  std::vector<core::PairList> out_lists(
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   cl::Device::kDefaultWorkGroups,
                                   groups.size())));
  co_await device.run_kernel_grouped(
      groups.size(), out_lists.size(),
      [&](std::size_t gi, std::size_t wg, cl::KernelCounters& c) {
        const Group& g = groups[gi];
        std::uint64_t bytes = g.key.size();
        for (auto v : g.values) bytes += v.size();
        c.charge_read(bytes);
        class Emitter : public core::ReduceEmitter {
         public:
          Emitter(core::PairList* out, cl::KernelCounters* c)
              : out_(out), c_(c) {}
          void emit(std::string_view k, std::string_view v) override {
            out_->add(k, v);
            c_->charge_write(k.size() + v.size());
          }

         private:
          core::PairList* out_;
          cl::KernelCounters* c_;
        };
        Emitter emitter(&out_lists[wg], &c);
        core::ReduceContext ctx{&emitter, &c};
        if (app.reduce.has_value()) {
          (*app.reduce)(g.key, g.values, ctx);
        } else {
          for (auto v : g.values) ctx.emit(g.key, v);
        }
      });
  for (const auto& pl : out_lists) {
    for (std::size_t e = 0; e < pl.size(); ++e) {
      const core::KV kv = pl.get(e);
      result.output[std::string(kv.key)] = std::string(kv.value);
    }
  }
}

// One cluster-wide StageGraph per phase: worker n runs on node n. GPMR
// inserts a barrier between phases, so each graph drains fully before the
// next starts.
std::unique_ptr<core::StageGraph> make_phase_graph(Shared& sh,
                                                   GpmrResult* result,
                                                   int phase) {
  auto g = std::make_unique<core::StageGraph>(sh.platform->sim(), "gpmr", 0);
  std::vector<int> node_of;
  for (int n = 0; n < sh.num_nodes; ++n) node_of.push_back(n);
  const char* name = phase == 0 ? "io" : (phase == 1 ? "map" : "reduce");
  g->add_stage(name, sh.num_nodes, node_of, [&sh, result, phase](
                                                core::Stage& st) {
    switch (phase) {
      case 0:
        return io_phase(st, sh);
      case 1:
        return map_phase(st, sh);
      default:
        return reduce_phase(st, sh, *result);
    }
  });
  return g;
}

}  // namespace

GpmrRuntime::GpmrRuntime(cluster::Platform& platform, dfs::FileSystem& fs,
                         cl::DeviceSpec device)
    : platform_(platform), fs_(fs), device_spec_(std::move(device)) {
  GW_CHECK_MSG(device_spec_.type != cl::DeviceType::kCpu,
               "GPMR runs on GPUs only");
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), device_spec_, nullptr, n));
  }
}

GpmrResult GpmrRuntime::run(const core::AppKernels& app, GpmrConfig config) {
  core::AppKernels effective_app = app;
  if (!effective_app.partition) {
    effective_app.partition = core::default_hash_partitioner();
  }

  auto& sim = platform_.sim();
  sim.tracer().clear();  // one job per trace
  GpmrResult result;

  Shared sh;
  sh.platform = &platform_;
  sh.fs = &fs_;
  sh.app = &effective_app;
  sh.cfg = &config;
  sh.num_nodes = platform_.num_nodes();
  for (auto& d : devices_) sh.devices.push_back(d.get());
  sh.slices.resize(sh.num_nodes);
  sh.bins.resize(sh.num_nodes);
  for (auto& b : sh.bins) b.resize(sh.num_nodes);

  auto& tr = sim.tracer();
  const auto phase_track = tr.track(0, "phase");
  const auto phase_names = std::array<std::int32_t, 3>{
      tr.intern("phase.io"), tr.intern("phase.map"), tr.intern("phase.reduce")};
  auto run_phase = [&](int phase) {
    auto g = make_phase_graph(sh, &result, phase);
    tr.begin(phase_track, trace::Kind::kPhase, phase_names[phase], sim.now());
    sim.spawn(g->run());
    sim.run();
    tr.end(phase_track, trace::Kind::kPhase, phase_names[phase], sim.now());
  };

  // Phase barriers: I/O, then compute, then exchange+reduce — GPMR does not
  // overlap them (total = sum), which is exactly the paper's Fig 3(e) point.
  const double t0 = sim.now();
  run_phase(0);
  result.io_seconds = sim.now() - t0;

  const double t1 = sim.now();
  run_phase(1);
  if (!config.skip_reduce) {
    run_phase(2);
  } else {
    // MM mode: partial results stay on the nodes; expose them merged for
    // verification only (no simulated cost).
    for (int dst = 0; dst < sh.num_nodes; ++dst) {
      for (int src = 0; src < sh.num_nodes; ++src) {
        const core::PairList& bin = sh.bins[dst][src];
        for (std::size_t e = 0; e < bin.size(); ++e) {
          const core::KV kv = bin.get(e);
          result.output[std::string(kv.key)] = std::string(kv.value);
        }
      }
    }
  }
  result.compute_seconds = sim.now() - t1;

  result.elapsed_seconds = config.charge_input_io
                               ? result.io_seconds + result.compute_seconds
                               : result.compute_seconds;
  result.input_records = sh.records;
  result.intermediate_pairs = sh.pairs;
  result.peak_intermediate_bytes = sh.peak_intermediate;
  return result;
}

}  // namespace gw::gpmr
