#include "util/compress.h"

#include <cstring>

#include "util/error.h"

namespace gw::util {

namespace {

// Format: varint uncompressed_size, then a token stream.
//   token = varint literal_len, literal bytes,
//           varint match_len (0 terminates after literals),
//           varint match_distance (present iff match_len > 0).
// Minimum match length 4; greedy matcher over a 64Ki-entry hash of 4-byte
// prefixes with a 64KB window.
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kWindow = 64 * 1024;
constexpr std::size_t kHashBits = 16;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Bytes lz_compress(const void* input, std::size_t len) {
  const auto* src = static_cast<const std::uint8_t*>(input);
  ByteWriter out;
  out.put_varint(len);
  if (len == 0) return out.take();

  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, 0xffffffffu);

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto flush = [&](std::size_t match_len, std::size_t distance) {
    out.put_varint(pos - literal_start);
    out.put_bytes(src + literal_start, pos - literal_start);
    out.put_varint(match_len);
    if (match_len > 0) out.put_varint(distance);
  };

  while (pos + kMinMatch <= len) {
    const std::uint32_t h = hash4(src + pos);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);

    std::size_t match_len = 0;
    if (cand != 0xffffffffu && pos - cand <= kWindow &&
        std::memcmp(src + cand, src + pos, kMinMatch) == 0) {
      match_len = kMinMatch;
      const std::size_t limit = len - pos;
      while (match_len < limit && src[cand + match_len] == src[pos + match_len]) {
        ++match_len;
      }
    }

    if (match_len >= kMinMatch) {
      flush(match_len, pos - cand);
      // Index a few positions inside the match so later data can refer back.
      const std::size_t end = pos + match_len;
      for (std::size_t i = pos + 1; i + kMinMatch <= end && i + 4 <= len; i += 3) {
        table[hash4(src + i)] = static_cast<std::uint32_t>(i);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  pos = len;
  if (literal_start < pos || len == 0) {
    flush(0, 0);
  } else {
    // Ended exactly on a match boundary: emit empty terminator token.
    out.put_varint(0);
    out.put_varint(0);
  }
  return out.take();
}

Bytes lz_decompress(const void* input, std::size_t len) {
  Bytes out;
  lz_decompress_into(input, len, out);
  return out;
}

void lz_decompress_into(const void* input, std::size_t len, Bytes& out) {
  ByteReader in(input, len);
  const std::uint64_t total = in.get_varint();
  out.clear();
  // Reserving the full output up front keeps out.data() stable below, so
  // match copies can read and write through raw pointers.
  out.reserve(total);
  const auto* src = static_cast<const std::uint8_t*>(input);
  while (out.size() < total) {
    const std::uint64_t lit = in.get_varint();
    if (lit > 0) {
      if (in.remaining() < lit) throw_error("lz: truncated literal run");
      const std::size_t off = out.size();
      out.resize(off + lit);
      std::memcpy(out.data() + off, src + in.position(), lit);
      in.skip(lit);
    }
    const std::uint64_t match = in.get_varint();
    if (match == 0) {
      if (out.size() < total && in.done())
        throw_error("lz: stream ended early");
      continue;
    }
    const std::uint64_t dist = in.get_varint();
    if (dist == 0 || dist > out.size()) throw_error("lz: bad match distance");
    if (out.size() + match > total) throw_error("lz: match overruns output");
    const std::size_t off = out.size();
    out.resize(off + match);
    const std::uint8_t* from = out.data() + off - dist;
    std::uint8_t* to = out.data() + off;
    if (dist >= match) {
      std::memcpy(to, from, match);
    } else {
      // Overlapping match (RLE-style): must copy byte-by-byte forward.
      for (std::uint64_t i = 0; i < match; ++i) to[i] = from[i];
    }
  }
  if (out.size() != total) throw_error("lz: size mismatch");
}

}  // namespace gw::util
