# Empty compiler generated dependencies file for gw_util.
# This may be replaced when dependencies are built.
