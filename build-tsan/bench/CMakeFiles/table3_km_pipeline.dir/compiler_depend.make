# Empty compiler generated dependencies file for table3_km_pipeline.
# This may be replaced when dependencies are built.
