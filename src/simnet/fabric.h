// Simulated cluster interconnect.
//
// Substitutes for the DAS-4 network the paper evaluates on (Gigabit
// Ethernet and QDR InfiniBand used as IP-over-InfiniBand). Each node has a
// full-duplex NIC modelled as a TX and an RX unit-capacity resource; a
// message of B bytes propagates after `latency`, then occupies sender TX and
// receiver RX for overhead + B/bandwidth. Payloads are real bytes, so
// everything the shuffle moves is byte-accurate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim.h"
#include "util/bytes.h"

namespace gw::net {

struct NetworkProfile {
  std::string name;
  double bandwidth_bytes_per_s;
  double latency_s;              // one-way propagation + switching
  double per_message_overhead_s; // protocol/stack cost per message

  // 1 Gbit/s Ethernet: ~117 MiB/s effective, 100 us latency.
  static NetworkProfile gigabit_ethernet();
  // QDR InfiniBand via IP-over-InfiniBand: ~1.0 GiB/s effective TCP
  // throughput, 25 us latency (IPoIB, not verbs).
  static NetworkProfile qdr_infiniband_ipoib();
};

// A delivered message. User-declared constructor per the sim.h channel
// payload rule.
struct Message {
  Message() : src(-1), port(-1) {}
  Message(int src_in, int port_in, util::Bytes payload_in)
      : src(src_in), port(port_in), payload(std::move(payload_in)) {}

  int src;
  int port;
  util::Bytes payload;
};

// Well-known service ports.
enum Port : int {
  kPortShuffle = 1,       // Glasswing push shuffle
  kPortDfs = 2,           // DFS block pipeline
  kPortHadoopFetch = 3,   // Hadoop pull-shuffle requests
  kPortHadoopReplyBase = 1000,  // + reducer id for fetch replies
};

class Fabric {
 public:
  Fabric(sim::Simulation& sim, int num_nodes, NetworkProfile profile);

  int num_nodes() const { return num_nodes_; }
  const NetworkProfile& profile() const { return profile_; }

  // Transfers `payload` from src to dst and enqueues it on (dst, port).
  // Completes when the message has been handed to the destination inbox.
  // Local sends (src == dst) are free of NIC cost but still asynchronous.
  sim::Task<> send(int src, int dst, int port, util::Bytes payload);

  // Charges the network cost of moving `bytes` from src to dst without
  // delivering a payload; used by the DFS replication pipeline and remote
  // block reads, where the real bytes are tracked by the filesystem layer.
  sim::Task<> transfer(int src, int dst, std::uint64_t bytes);

  // Inbox channel for (node, port); created on first use. Receivers loop on
  // recv() until the port is closed.
  sim::Channel<Message>& inbox(int node, int port);

  // Closes an inbox so blocked receivers see end-of-stream.
  void close_port(int node, int port);

  std::uint64_t bytes_sent(int node) const { return stats_[node].bytes_tx; }
  std::uint64_t bytes_received(int node) const { return stats_[node].bytes_rx; }
  std::uint64_t messages_sent(int node) const { return stats_[node].msgs_tx; }
  std::uint64_t total_bytes_sent() const;

 private:
  struct NodeState {
    std::unique_ptr<sim::Resource> tx;
    std::unique_ptr<sim::Resource> rx;
  };
  struct NodeStats {
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t msgs_tx = 0;
  };

  sim::Simulation& sim_;
  int num_nodes_;
  NetworkProfile profile_;
  std::vector<NodeState> nodes_;
  std::vector<NodeStats> stats_;
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Message>>> inboxes_;
};

}  // namespace gw::net
