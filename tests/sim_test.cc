// Unit and property tests for the discrete-event simulation engine.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sim.h"

namespace gw::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Simulation, DelayAdvancesClock) {
  Simulation sim;
  double observed = -1;
  auto proc = [](Simulation& s, double* out) -> Task<> {
    co_await s.delay(2.5);
    *out = s.now();
  };
  sim.spawn(proc(sim, &observed));
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulation, EventsOrderedByTimeThenFifo) {
  Simulation sim;
  std::vector<std::string> order;
  auto proc = [](Simulation& s, std::vector<std::string>* log, double t,
                 std::string name) -> Task<> {
    co_await s.delay(t);
    log->push_back(std::move(name));
  };
  // Same wakeup time: insertion order must be preserved.
  sim.spawn(proc(sim, &order, 1.0, "a"));
  sim.spawn(proc(sim, &order, 0.5, "b"));
  sim.spawn(proc(sim, &order, 1.0, "c"));
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "b");
  EXPECT_EQ(order[1], "a");
  EXPECT_EQ(order[2], "c");
}

TEST(Simulation, NestedTasksReturnValues) {
  Simulation sim;
  auto child = [](Simulation& s, int x) -> Task<int> {
    co_await s.delay(1.0);
    co_return x * 2;
  };
  int result = 0;
  auto parent = [&child](Simulation& s, int* out) -> Task<> {
    const int a = co_await child(s, 21);
    const int b = co_await child(s, a);
    *out = b;
  };
  sim.spawn(parent(sim, &result));
  sim.run();
  EXPECT_EQ(result, 84);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulation, ExceptionPropagatesToAwaiter) {
  Simulation sim;
  auto child = [](Simulation& s) -> Task<> {
    co_await s.delay(0.1);
    throw util::Error("boom");
  };
  bool caught = false;
  auto parent = [&child](Simulation& s, bool* flag) -> Task<> {
    try {
      co_await child(s);
    } catch (const util::Error&) {
      *flag = true;
    }
  };
  sim.spawn(parent(sim, &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  auto proc = [](Simulation& s, double t, int* n) -> Task<> {
    co_await s.delay(t);
    ++*n;
  };
  sim.spawn(proc(sim, 1.0, &fired));
  sim.spawn(proc(sim, 3.0, &fired));
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Event, WaitersResumeAfterSet) {
  Simulation sim;
  Event ev(sim);
  std::vector<double> times;
  auto waiter = [](Simulation& s, Event& e, std::vector<double>* t) -> Task<> {
    co_await e.wait();
    t->push_back(s.now());
  };
  auto setter = [](Simulation& s, Event& e) -> Task<> {
    co_await s.delay(5.0);
    e.set();
  };
  sim.spawn(waiter(sim, ev, &times));
  sim.spawn(waiter(sim, ev, &times));
  sim.spawn(setter(sim, ev));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
  EXPECT_DOUBLE_EQ(times[1], 5.0);
}

TEST(Event, WaitAfterSetIsImmediate) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  double t = -1;
  auto waiter = [](Simulation& s, Event& e, double* out) -> Task<> {
    co_await s.delay(1.0);
    co_await e.wait();
    *out = s.now();
  };
  sim.spawn(waiter(sim, ev, &t));
  sim.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(Resource, SerializesWhenCapacityOne) {
  Simulation sim;
  Resource res(sim, 1);
  std::vector<double> start_times;
  auto user = [](Simulation& s, Resource& r,
                 std::vector<double>* starts) -> Task<> {
    auto hold = co_await r.acquire();
    starts->push_back(s.now());
    co_await s.delay(1.0);
  };
  for (int i = 0; i < 3; ++i) sim.spawn(user(sim, res, &start_times));
  sim.run();
  ASSERT_EQ(start_times.size(), 3u);
  EXPECT_DOUBLE_EQ(start_times[0], 0.0);
  EXPECT_DOUBLE_EQ(start_times[1], 1.0);
  EXPECT_DOUBLE_EQ(start_times[2], 2.0);
}

TEST(Resource, ParallelismMatchesCapacity) {
  Simulation sim;
  Resource res(sim, 3);
  int completed = 0;
  auto user = [](Simulation& s, Resource& r, int* done) -> Task<> {
    auto hold = co_await r.acquire();
    co_await s.delay(1.0);
    ++*done;
  };
  for (int i = 0; i < 9; ++i) sim.spawn(user(sim, res, &completed));
  sim.run();
  EXPECT_EQ(completed, 9);
  // 9 unit jobs at parallelism 3 take exactly 3 time units.
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Resource, FifoAdmission) {
  Simulation sim;
  Resource res(sim, 2);
  std::vector<int> order;
  auto user = [](Simulation& s, Resource& r, std::vector<int>* log,
                 int id) -> Task<> {
    auto hold = co_await r.acquire();
    log->push_back(id);
    co_await s.delay(1.0);
  };
  for (int i = 0; i < 6; ++i) sim.spawn(user(sim, res, &order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Resource, MultiUnitAcquire) {
  Simulation sim;
  Resource res(sim, 4);
  std::vector<double> times;
  auto user = [](Simulation& s, Resource& r, std::int64_t n,
                 std::vector<double>* t) -> Task<> {
    auto hold = co_await r.acquire(n);
    t->push_back(s.now());
    co_await s.delay(1.0);
  };
  sim.spawn(user(sim, res, 3, &times));  // fits immediately
  sim.spawn(user(sim, res, 3, &times));  // must wait for first
  sim.spawn(user(sim, res, 1, &times));  // FIFO: waits behind the size-3 job
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 1.0);
}

TEST(Resource, HoldReleasesOnScopeExit) {
  Simulation sim;
  Resource res(sim, 1);
  EXPECT_EQ(res.available(), 1);
  auto user = [](Simulation& s, Resource& r) -> Task<> {
    {
      auto hold = co_await r.acquire();
      co_await s.delay(1.0);
    }
    // released here; re-acquire must succeed instantly
    auto again = co_await r.acquire();
    co_await s.delay(1.0);
  };
  sim.spawn(user(sim, res));
  sim.run();
  EXPECT_EQ(res.available(), 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Channel, FifoDelivery) {
  Simulation sim;
  Channel<int> ch(sim, 4);
  std::vector<int> received;
  auto producer = [](Simulation& s, Channel<int>& c) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await c.send(i);
      co_await s.delay(0.1);
    }
    c.close();
  };
  auto consumer = [](Channel<int>& c, std::vector<int>* out) -> Task<> {
    for (;;) {
      auto v = co_await c.recv();
      if (!v) break;
      out->push_back(*v);
    }
  };
  sim.spawn(producer(sim, ch));
  sim.spawn(consumer(ch, &received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BoundedCapacityBlocksSender) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  std::vector<double> send_times;
  auto producer = [](Simulation& s, Channel<int>& c,
                     std::vector<double>* t) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await c.send(i);
      t->push_back(s.now());
    }
    c.close();
  };
  auto slow_consumer = [](Simulation& s, Channel<int>& c) -> Task<> {
    for (;;) {
      co_await s.delay(1.0);
      auto v = co_await c.recv();
      if (!v) break;
    }
  };
  sim.spawn(producer(sim, ch, &send_times));
  sim.spawn(slow_consumer(sim, ch));
  sim.run();
  ASSERT_EQ(send_times.size(), 3u);
  EXPECT_DOUBLE_EQ(send_times[0], 0.0);  // buffered immediately
  // Later sends gated by the 1-per-second consumer.
  EXPECT_DOUBLE_EQ(send_times[1], 1.0);
  EXPECT_DOUBLE_EQ(send_times[2], 2.0);
}

TEST(Channel, CloseWakesBlockedReceiver) {
  Simulation sim;
  Channel<int> ch(sim, 1);
  bool got_nullopt = false;
  auto consumer = [](Channel<int>& c, bool* flag) -> Task<> {
    auto v = co_await c.recv();
    *flag = !v.has_value();
  };
  auto closer = [](Simulation& s, Channel<int>& c) -> Task<> {
    co_await s.delay(3.0);
    c.close();
  };
  sim.spawn(consumer(ch, &got_nullopt));
  sim.spawn(closer(sim, ch));
  sim.run();
  EXPECT_TRUE(got_nullopt);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Channel, DrainsQueuedItemsAfterClose) {
  Simulation sim;
  Channel<int> ch(sim, 8);
  std::vector<int> received;
  auto producer = [](Channel<int>& c) -> Task<> {
    for (int i = 0; i < 4; ++i) co_await c.send(i);
    c.close();
  };
  auto consumer = [](Simulation& s, Channel<int>& c,
                     std::vector<int>* out) -> Task<> {
    co_await s.delay(1.0);  // start after close
    for (;;) {
      auto v = co_await c.recv();
      if (!v) break;
      out->push_back(*v);
    }
  };
  sim.spawn(producer(ch));
  sim.spawn(consumer(sim, ch, &received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Channel, MultipleConsumersShareWork) {
  Simulation sim;
  Channel<int> ch(sim, 2);
  std::vector<int> a, b;
  auto producer = [](Simulation& s, Channel<int>& c) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await c.send(i);
      co_await s.delay(0.1);
    }
    c.close();
  };
  auto consumer = [](Simulation& s, Channel<int>& c,
                     std::vector<int>* out) -> Task<> {
    for (;;) {
      auto v = co_await c.recv();
      if (!v) break;
      out->push_back(*v);
      co_await s.delay(0.15);
    }
  };
  sim.spawn(producer(sim, ch));
  sim.spawn(consumer(sim, ch, &a));
  sim.spawn(consumer(sim, ch, &b));
  sim.run();
  EXPECT_EQ(a.size() + b.size(), 10u);
  std::vector<int> all(a);
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
}

TEST(SimulationTracer, AccumulatesBusyTime) {
  Simulation sim;
  auto& tr = sim.tracer();
  const auto ref = tr.track(0, "stage/0");
  const auto id = tr.intern("work");
  auto proc = [](Simulation& s, trace::TrackRef ref, std::int32_t id) -> Task<> {
    auto& tr = s.tracer();
    for (int i = 0; i < 3; ++i) {
      tr.begin(ref, trace::Kind::kStage, id, s.now());
      co_await s.delay(2.0);
      tr.end(ref, trace::Kind::kStage, id, s.now());
      co_await s.delay(1.0);  // idle, not counted
    }
  };
  sim.spawn(proc(sim, ref, id));
  sim.run();
  const auto occ = tr.occupancy(0, "work");
  EXPECT_DOUBLE_EQ(occ.busy, 6.0);
  EXPECT_EQ(occ.intervals, 3u);
  EXPECT_EQ(occ.spans, 3u);
  EXPECT_EQ(tr.validate(), "");
}

// Determinism property: identical programs produce identical event traces.
TEST(Simulation, DeterministicAcrossRuns) {
  auto run_once = []() {
    Simulation sim;
    Resource res(sim, 2);
    Channel<int> ch(sim, 3);
    std::vector<double> trace;
    auto producer = [](Simulation& s, Resource& r, Channel<int>& c,
                       std::vector<double>* t) -> Task<> {
      for (int i = 0; i < 20; ++i) {
        auto hold = co_await r.acquire();
        co_await s.delay(0.3);
        co_await c.send(i);
        t->push_back(s.now());
      }
      c.close();
    };
    auto consumer = [](Simulation& s, Channel<int>& c,
                       std::vector<double>* t) -> Task<> {
      for (;;) {
        auto v = co_await c.recv();
        if (!v) break;
        co_await s.delay(0.7);
        t->push_back(-s.now());
      }
    };
    sim.spawn(producer(sim, res, ch, &trace));
    sim.spawn(consumer(sim, ch, &trace));
    sim.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// Pipeline property: with K buffers, total elapsed time of an N-item,
// S-stage pipeline matches the analytic bound (dominant stage governs).
class PipelineBuffering : public ::testing::TestWithParam<int> {};

TEST_P(PipelineBuffering, ElapsedMatchesDominantStage) {
  const int buffers = GetParam();
  Simulation sim;
  Resource pool(sim, buffers);
  constexpr int kItems = 10;
  constexpr double kStage1 = 1.0;
  constexpr double kStage2 = 2.0;  // dominant

  // Stage 1 acquires a buffer, produces, passes downstream; stage 2 frees it.
  // User-declared constructor per the sim.h channel payload rule.
  struct Item {
    Item(int id_in, Resource::Hold buffer_in)
        : id(id_in), buffer(std::move(buffer_in)) {}
    int id;
    Resource::Hold buffer;
  };
  auto stage1 = [](Simulation& s, Resource& p, Channel<Item>& out) -> Task<> {
    for (int i = 0; i < kItems; ++i) {
      auto buf = co_await p.acquire();
      co_await s.delay(kStage1);
      co_await out.send(Item{i, std::move(buf)});
    }
    out.close();
  };
  auto stage2 = [](Simulation& s, Channel<Item>& in) -> Task<> {
    for (;;) {
      auto item = co_await in.recv();
      if (!item) break;
      co_await s.delay(kStage2);
      item->buffer.release();  // free the buffer for stage 1 immediately
    }
  };
  Channel<Item> ch(sim, 16);
  sim.spawn(stage1(sim, pool, ch));
  sim.spawn(stage2(sim, ch));
  sim.run();

  if (buffers == 1) {
    // Fully interlocked: stages serialize.
    EXPECT_NEAR(sim.now(), kItems * (kStage1 + kStage2), 1e-9);
  } else {
    // Overlapped: dominant stage governs, plus one fill of stage 1.
    EXPECT_NEAR(sim.now(), kStage1 + kItems * kStage2, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BufferCounts, PipelineBuffering,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace gw::sim
