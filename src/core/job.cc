#include "core/job.h"

#include <algorithm>

#include "core/intermediate.h"
#include "util/error.h"

namespace gw::core {

namespace {

// Per-node mutable state for one job run.
struct NodeRun {
  std::unique_ptr<IntermediateStore> store;
  MapMetrics map;
  ReduceMetrics reduce;
  std::unique_ptr<sim::Event> shuffle_done;
  trace::TrackRef phase_track;
};

sim::Task<> shuffle_receiver(NodeContext ctx, sim::Event& done) {
  // Every node (including self) announces end-of-map with a transport EOS
  // frame; the receiver resolves once all of them arrived and the inbox
  // drained, then the port is released for reuse by the next job.
  net::Transport::Receiver rx = ctx.platform->transport().receiver(
      ctx.node_id, net::kPortShuffle, ctx.num_nodes);
  const int P = ctx.config->partitions_per_node;
  for (;;) {
    auto msg = co_await rx.recv();
    if (!msg) break;
    util::ByteReader r(msg->payload);
    const std::uint32_t g = r.get_u32();
    GW_CHECK_MSG(static_cast<int>(g) / P == ctx.node_id,
                 "partition routed to wrong node");
    ctx.store->add_run(static_cast<int>(g) % P, Run::deserialize(r));
  }
  done.set();
}

sim::Task<> node_main(NodeContext ctx, cl::Device* reduce_device,
                      SplitScheduler& scheduler, NodeRun& state) {
  auto& sim = ctx.sim();
  auto& tr = sim.tracer();
  const auto t = state.phase_track;
  const auto map_name = tr.intern("phase.map");
  const auto merge_name = tr.intern("phase.merge");
  const auto reduce_name = tr.intern("phase.reduce");
  ctx.store->start_mergers();
  sim.spawn(shuffle_receiver(ctx, *state.shuffle_done));

  tr.begin(t, trace::Kind::kPhase, map_name, sim.now());
  co_await run_map_phase(ctx, scheduler, state.map);
  tr.end(t, trace::Kind::kPhase, map_name, sim.now());
  tr.begin(t, trace::Kind::kPhase, merge_name, sim.now());

  // Map phase done on this node: tell every node (including self) that no
  // more intermediate data will arrive from here.
  for (int dst = 0; dst < ctx.num_nodes; ++dst) {
    co_await ctx.platform->transport().finish(ctx.node_id, dst,
                                              net::kPortShuffle);
  }

  // Merge phase: continues until all remote data arrived and the merger
  // threads consolidated every partition (§III: "After the merge phase
  // completes, the reduce phase is started").
  co_await state.shuffle_done->wait();
  co_await ctx.store->drain();
  tr.end(t, trace::Kind::kPhase, merge_name, sim.now());

  ctx.device = reduce_device;  // per-phase device selection
  tr.begin(t, trace::Kind::kPhase, reduce_name, sim.now());
  co_await run_reduce_phase(ctx, state.reduce);
  tr.end(t, trace::Kind::kPhase, reduce_name, sim.now());
}

}  // namespace

std::vector<std::unique_ptr<cl::Device>> GlasswingRuntime::make_devices(
    const cl::DeviceSpec& spec) {
  std::vector<std::unique_ptr<cl::Device>> devices;
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    sim::Resource* cores = spec.type == cl::DeviceType::kCpu
                               ? &platform_.node(n).host_cores()
                               : nullptr;
    devices.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores, n));
  }
  return devices;
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs, cl::DeviceSpec device)
    : platform_(platform), fs_(fs) {
  map_devices_ = make_devices(device);
  reduce_devices_ = make_devices(device);
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs,
                                   cl::DeviceSpec map_device,
                                   cl::DeviceSpec reduce_device)
    : platform_(platform), fs_(fs) {
  map_devices_ = make_devices(map_device);
  reduce_devices_ = make_devices(reduce_device);
}

GlasswingRuntime::GlasswingRuntime(cluster::Platform& platform,
                                   dfs::FileSystem& fs,
                                   std::vector<cl::DeviceSpec> per_node_devices)
    : platform_(platform), fs_(fs) {
  GW_CHECK_MSG(static_cast<int>(per_node_devices.size()) ==
                   platform_.num_nodes(),
               "one device spec per node required");
  for (int n = 0; n < platform_.num_nodes(); ++n) {
    const cl::DeviceSpec& spec = per_node_devices[static_cast<std::size_t>(n)];
    sim::Resource* cores = spec.type == cl::DeviceType::kCpu
                               ? &platform_.node(n).host_cores()
                               : nullptr;
    map_devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores, n));
    reduce_devices_.push_back(
        std::make_unique<cl::Device>(platform_.sim(), spec, cores, n));
  }
}

JobResult GlasswingRuntime::run(const AppKernels& app, JobConfig config) {
  GW_CHECK_MSG(static_cast<bool>(app.map), "job needs a map function");
  GW_CHECK_MSG(!config.input_paths.empty(), "job needs input paths");
  GW_CHECK_MSG(!config.output_path.empty(), "job needs an output path");

  AppKernels effective_app = app;
  if (!effective_app.partition) {
    effective_app.partition = default_hash_partitioner();
  }
  // The combiner is only available with the hash-table collector (§III-F).
  if (config.output_mode != OutputMode::kHashTable ||
      !effective_app.combine.has_value()) {
    config.use_combiner = false;
  }

  if (config.output_replication > 0) {
    if (auto* hdfs = dynamic_cast<dfs::Dfs*>(&fs_)) {
      hdfs->set_replication(config.output_replication);
    }
  }

  auto& sim = platform_.sim();
  sim.tracer().clear();  // one job per trace
  const int num_nodes = platform_.num_nodes();
  const double start = sim.now();

  // Transport counters are cumulative per platform (input staging counts
  // too); snapshot so the report covers exactly this job.
  net::Transport& tp = platform_.transport();
  const std::uint64_t net_shuffle0 =
      tp.total_bytes(net::TrafficClass::kShuffle);
  const std::uint64_t net_dfs0 = tp.total_bytes(net::TrafficClass::kDfs);
  const std::uint64_t net_control0 =
      tp.total_bytes(net::TrafficClass::kControl);

  SplitScheduler scheduler(
      SplitScheduler::make_splits(fs_, config.input_paths, config.split_size));

  std::vector<NodeRun> nodes(num_nodes);
  sim::TaskGroup all(sim);
  for (int n = 0; n < num_nodes; ++n) {
    NodeRun& state = nodes[n];
    state.store = std::make_unique<IntermediateStore>(platform_.node(n), sim,
                                                      config);
    state.shuffle_done = std::make_unique<sim::Event>(sim);
    state.phase_track = sim.tracer().track(n, "phase");

    NodeContext ctx;
    ctx.platform = &platform_;
    ctx.node = &platform_.node(n);
    ctx.fs = &fs_;
    ctx.device = map_devices_[n].get();
    ctx.store = state.store.get();
    ctx.config = &config;
    ctx.app = &effective_app;
    ctx.node_id = n;
    ctx.num_nodes = num_nodes;
    ctx.total_partitions = num_nodes * config.partitions_per_node;
    all.spawn(node_main(ctx, reduce_devices_[n].get(), scheduler, state));
  }

  bool failed = false;
  std::string failure;
  sim.spawn([](sim::TaskGroup& group, bool* failed_out,
               std::string* msg) -> sim::Task<> {
    try {
      co_await group.wait();
    } catch (const std::exception& e) {
      *failed_out = true;
      *msg = e.what();
    }
  }(all, &failed, &failure));
  sim.run();
  if (failed) util::throw_error("job failed: " + failure);

  JobResult result;
  result.elapsed_seconds = sim.now() - start;
  // Stage breakdown reduces from the trace: each column is the max over
  // nodes of that span's busy occupancy (partition: max over its worker
  // tracks, the paper's Fig 4(a) metric).
  const trace::Tracer& tr = sim.tracer();
  double map_end = start, merge_delay = 0, reduce_elapsed = 0;
  for (int n = 0; n < num_nodes; ++n) {
    const NodeRun& s = nodes[static_cast<std::size_t>(n)];
    const trace::Occupancy phase_map = tr.occupancy(n, "phase.map");
    const trace::Occupancy phase_merge = tr.occupancy(n, "phase.merge");
    const trace::Occupancy phase_reduce = tr.occupancy(n, "phase.reduce");
    map_end = std::max(map_end, phase_map.last_end);
    merge_delay = std::max(merge_delay, phase_merge.busy);
    reduce_elapsed = std::max(reduce_elapsed, phase_reduce.busy);

    result.stages.input =
        std::max(result.stages.input, tr.occupancy(n, "map.input").busy);
    result.stages.stage =
        std::max(result.stages.stage, tr.occupancy(n, "map.stage").busy);
    result.stages.kernel =
        std::max(result.stages.kernel, tr.occupancy(n, "map.kernel").busy);
    result.stages.retrieve =
        std::max(result.stages.retrieve, tr.occupancy(n, "map.retrieve").busy);
    result.stages.partition = std::max(
        result.stages.partition, tr.occupancy(n, "map.partition").max_track_busy);
    result.stages.map_elapsed =
        std::max(result.stages.map_elapsed, phase_map.busy);
    result.stages.merge_delay =
        std::max(result.stages.merge_delay, phase_merge.busy);
    result.stages.reduce_input = std::max(result.stages.reduce_input,
                                          tr.occupancy(n, "reduce.input").busy);
    result.stages.reduce_stage = std::max(result.stages.reduce_stage,
                                          tr.occupancy(n, "reduce.stage").busy);
    result.stages.reduce_kernel = std::max(
        result.stages.reduce_kernel, tr.occupancy(n, "reduce.kernel").busy);
    result.stages.reduce_retrieve = std::max(
        result.stages.reduce_retrieve, tr.occupancy(n, "reduce.retrieve").busy);
    result.stages.reduce_output = std::max(
        result.stages.reduce_output, tr.occupancy(n, "reduce.output").busy);
    result.stages.reduce_elapsed =
        std::max(result.stages.reduce_elapsed, phase_reduce.busy);

    result.stats.input_records += s.map.records;
    result.stats.intermediate_pairs += s.map.pairs;
    result.stats.intermediate_bytes += s.map.intermediate_raw;
    result.stats.intermediate_stored += s.map.intermediate_stored;
    result.stats.shuffle_bytes_remote += s.map.shuffle_bytes_remote;
    result.stats.map_task_retries += s.map.task_failures;
    result.stats.spills += s.store->spills();
    result.stats.merges += s.store->merges();
    result.stats.merge_fanin_runs += s.store->merge_fanin_runs();
    result.stats.hash_table_probes += s.map.hash_probes;
    result.stats.output_pairs += s.reduce.output_pairs;
    result.stats.map_kernel += s.map.kernel_stats;
    result.stats.reduce_kernel += s.reduce.kernel_stats;
    for (const auto& f : s.reduce.output_files) {
      result.output_files.push_back(f);
    }
  }
  result.map_phase_seconds = map_end - start;
  result.merge_delay_seconds = merge_delay;
  result.reduce_phase_seconds = reduce_elapsed;
  result.stats.net_shuffle_bytes =
      tp.total_bytes(net::TrafficClass::kShuffle) - net_shuffle0;
  result.stats.net_dfs_bytes =
      tp.total_bytes(net::TrafficClass::kDfs) - net_dfs0;
  result.stats.net_control_bytes =
      tp.total_bytes(net::TrafficClass::kControl) - net_control0;
  std::sort(result.output_files.begin(), result.output_files.end());
  return result;
}

}  // namespace gw::core
