// Tests for the simulated-timeline trace subsystem: occupancy reduction
// semantics, structural validation, ring overflow, Chrome-trace export, and
// the bit-identity of recorded traces across host thread-pool sizes
// (tracing must be a pure observer of the simulation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/wordcount.h"
#include "core/job.h"
#include "gwdfs/fs.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace gw {
namespace {

using cluster::ClusterSpec;
using cluster::NodeSpec;
using cluster::Platform;

TEST(Trace, OccupancyUnionsOverlappingSpans) {
  trace::Tracer tr;
  const auto t0 = tr.track(0, "w/0");
  const auto t1 = tr.track(0, "w/1");
  const std::int32_t name = tr.intern("stage");
  // Two workers overlap on [1,3] and [2,5]: union busy = 4, per-track
  // maximum = 3 (the Fig 4(a) partition metric), one merged interval.
  tr.begin(t0, trace::Kind::kStage, name, 1.0);
  tr.begin(t1, trace::Kind::kStage, name, 2.0);
  tr.end(t0, trace::Kind::kStage, name, 3.0);
  tr.end(t1, trace::Kind::kStage, name, 5.0);
  const auto occ = tr.occupancy(0, "stage");
  EXPECT_TRUE(occ.seen);
  EXPECT_DOUBLE_EQ(occ.busy, 4.0);
  EXPECT_DOUBLE_EQ(occ.max_track_busy, 3.0);
  EXPECT_EQ(occ.intervals, 1u);
  EXPECT_EQ(occ.spans, 2u);
  EXPECT_DOUBLE_EQ(occ.elapsed(), 4.0);
  EXPECT_EQ(tr.validate(), "");
}

TEST(Trace, OccupancyDisjointIntervalsAccumulate) {
  trace::Tracer tr;
  const auto t0 = tr.track(2, "w");
  const std::int32_t name = tr.intern("stage");
  for (int i = 0; i < 3; ++i) {
    tr.begin(t0, trace::Kind::kStage, name, i * 10.0);
    tr.end(t0, trace::Kind::kStage, name, i * 10.0 + 2.0);
  }
  const auto occ = tr.occupancy(2, "stage");
  EXPECT_DOUBLE_EQ(occ.busy, 6.0);
  EXPECT_EQ(occ.intervals, 3u);
  EXPECT_EQ(occ.spans, 3u);
  EXPECT_DOUBLE_EQ(occ.elapsed(), 22.0);
  // Never-seen names reduce to zeroes, not errors.
  EXPECT_FALSE(tr.occupancy(2, "absent").seen);
  EXPECT_FALSE(tr.occupancy(7, "stage").seen);
}

TEST(Trace, SpanNamesInFirstAppearanceOrder) {
  trace::Tracer tr;
  const auto t0 = tr.track(0, "w");
  tr.begin(t0, trace::Kind::kStage, tr.intern("b"), 0.0);
  tr.end(t0, trace::Kind::kStage, tr.intern("b"), 1.0);
  tr.begin(t0, trace::Kind::kStage, tr.intern("a"), 2.0);
  tr.end(t0, trace::Kind::kStage, tr.intern("a"), 3.0);
  // Instants are point events, not busy intervals: they never open an
  // occupancy accumulator.
  tr.instant(t0, trace::Kind::kMark, tr.intern("ping"), 4.0);
  const auto names = tr.span_names(0);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
  EXPECT_FALSE(tr.occupancy(0, "ping").seen);
}

TEST(Trace, ValidateCatchesUnbalancedAndMisnestedSpans) {
  {
    trace::Tracer tr;
    const auto t0 = tr.track(0, "w");
    tr.begin(t0, trace::Kind::kStage, tr.intern("open"), 1.0);
    EXPECT_NE(tr.validate(), "");  // begin without end
  }
  {
    // Overlapping (not nested) spans on one track: x opens, y opens, x
    // closes while y is still the innermost — improper nesting.
    trace::Tracer tr;
    const auto t0 = tr.track(0, "w");
    const std::int32_t x = tr.intern("x");
    const std::int32_t y = tr.intern("y");
    tr.begin(t0, trace::Kind::kStage, x, 1.0);
    tr.begin(t0, trace::Kind::kStage, y, 2.0);
    tr.end(t0, trace::Kind::kStage, x, 3.0);
    tr.end(t0, trace::Kind::kStage, y, 4.0);
    EXPECT_NE(tr.validate(), "");
  }
}

TEST(Trace, ValidateAcceptsProperNesting) {
  trace::Tracer tr;
  const auto t0 = tr.track(0, "w");
  const std::int32_t outer = tr.intern("outer");
  const std::int32_t inner = tr.intern("inner");
  tr.begin(t0, trace::Kind::kStage, outer, 0.0);
  tr.begin(t0, trace::Kind::kKernel, inner, 1.0);
  tr.instant(t0, trace::Kind::kShuffle, tr.intern("send"), 1.5);
  tr.end(t0, trace::Kind::kKernel, inner, 2.0);
  tr.end(t0, trace::Kind::kStage, outer, 3.0);
  EXPECT_EQ(tr.validate(), "");
}

TEST(Trace, ClearKeepsNamesAndTracksDropsEvents) {
  trace::Tracer tr;
  const auto t0 = tr.track(1, "device:X");
  const std::int32_t name = tr.intern("kernel");
  tr.begin(t0, trace::Kind::kKernel, name, 0.0);
  tr.end(t0, trace::Kind::kKernel, name, 1.0);
  EXPECT_EQ(tr.recorded(), 2u);
  tr.clear();
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_FALSE(tr.occupancy(1, "kernel").seen);
  // Cached name ids and TrackRefs stay usable across clear() — device and
  // store tracks register once at construction.
  EXPECT_EQ(tr.intern("kernel"), name);
  tr.begin(t0, trace::Kind::kKernel, name, 5.0);
  tr.end(t0, trace::Kind::kKernel, name, 6.0);
  EXPECT_DOUBLE_EQ(tr.occupancy(1, "kernel").busy, 1.0);
  EXPECT_EQ(tr.validate(), "");
}

TEST(Trace, RingOverflowDropsEventsButKeepsExactAggregates) {
  trace::Tracer tr;
  tr.set_ring_capacity(8);
  const auto t0 = tr.track(0, "w");
  const std::int32_t name = tr.intern("stage");
  for (int i = 0; i < 50; ++i) {
    tr.begin(t0, trace::Kind::kStage, name, i * 2.0);
    tr.end(t0, trace::Kind::kStage, name, i * 2.0 + 1.0);
  }
  EXPECT_EQ(tr.recorded(), 100u);
  EXPECT_EQ(tr.dropped(), 92u);
  // Occupancy accumulators stream past the ring: still exact.
  const auto occ = tr.occupancy(0, "stage");
  EXPECT_DOUBLE_EQ(occ.busy, 50.0);
  EXPECT_EQ(occ.spans, 50u);
  // Validation is skipped (not failed) for nodes with evicted events.
  EXPECT_EQ(tr.validate(), "");
  // The export still loads: it carries the retained suffix plus a marker.
  const std::string json = tr.chrome_json();
  EXPECT_NE(json.find("ring_dropped"), std::string::npos);
}

TEST(Trace, ChromeJsonShape) {
  trace::Tracer tr;
  const auto t0 = tr.track(0, "map.input");
  const std::int32_t name = tr.intern("map.input");
  tr.begin(t0, trace::Kind::kStage, name, 0.25, 7);
  tr.end(t0, trace::Kind::kStage, name, 0.5);
  tr.instant(t0, trace::Kind::kShuffle, tr.intern("map.shuffle"), 0.75, 99);
  const std::string json = tr.chrome_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the object
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Timestamps are microseconds: 0.25s -> 250000.
  EXPECT_NE(json.find("\"ts\":250000.000"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"shuffle\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\":99"), std::string::npos);
}

// --- pure-observer bit-identity on a real job ---

// One full 4-node wordcount job; exports the trace before teardown.
struct TracedRun {
  core::JobResult result;
  std::string trace_json;
  std::string validation;
  std::uint64_t events = 0;
};

TracedRun run_traced_wordcount() {
  Platform p(ClusterSpec::homogeneous(
      4, NodeSpec::das4_type1(), net::NetworkProfile::qdr_infiniband_ipoib()));
  dfs::Dfs fs(p, dfs::DfsConfig{});
  util::Bytes text = apps::generate_wiki_text(1 << 20, 2014);
  p.sim().spawn([](dfs::Dfs& f, util::Bytes t) -> sim::Task<> {
    co_await f.write_distributed("/in", std::move(t));
  }(fs, std::move(text)));
  p.sim().run();

  core::JobConfig cfg;
  cfg.input_paths = {"/in"};
  cfg.output_path = "/out";
  cfg.split_size = 128 << 10;
  core::GlasswingRuntime rt(p, fs, cl::DeviceSpec::cpu_dual_e5620());
  TracedRun out;
  out.result = rt.run(apps::wordcount().kernels, cfg);
  out.trace_json = p.sim().tracer().chrome_json();
  out.validation = p.sim().tracer().validate();
  out.events = p.sim().tracer().recorded();
  return out;
}

TEST(TraceDeterminism, WordcountSpansBalancedAndCoverPhases) {
  util::ThreadPool::reset_global(1);
  const TracedRun run = run_traced_wordcount();
  EXPECT_EQ(run.validation, "");
  EXPECT_GT(run.events, 0u);
  for (const char* name : {"phase.map", "phase.merge", "phase.reduce",
                           "map.input", "map.kernel", "map.partition",
                           "reduce.kernel", "store.merge"}) {
    EXPECT_NE(run.trace_json.find(name), std::string::npos) << name;
  }
}

TEST(TraceDeterminism, WordcountTraceIdenticalAcrossThreadCounts) {
  // Same property offload_test checks for outputs, extended to the trace:
  // the recorded timeline (every event, timestamp and payload) must not
  // depend on the host pool size the simulation happened to run under.
  util::ThreadPool::reset_global(1);
  const TracedRun base = run_traced_wordcount();
  ASSERT_FALSE(base.trace_json.empty());
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    util::ThreadPool::reset_global(threads);
    const TracedRun run = run_traced_wordcount();
    EXPECT_EQ(run.trace_json, base.trace_json) << "pool size " << threads;
    EXPECT_EQ(run.events, base.events);
  }
  util::ThreadPool::reset_global(1);
}

}  // namespace
}  // namespace gw
